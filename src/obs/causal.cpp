#include "obs/causal.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tj::obs {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Spine events: the causal skeleton. One per structural/lifecycle step of
/// a task, in that task's program order. Overhead intervals hang off the
/// spine; they never carry the walk themselves (a JoinBlocked event is
/// emitted *after* the wake, so using it as a predecessor would hide the
/// joined child's chain behind its late timestamp).
bool is_spine(EventKind k) {
  switch (k) {
    case EventKind::TaskInit:
    case EventKind::TaskSpawn:
    case EventKind::TaskStart:
    case EventKind::TaskEnd:
    case EventKind::JoinComplete:
    case EventKind::PromiseMake:
    case EventKind::PromiseFulfill:
    case EventKind::PromiseTransfer:
    case EventKind::AwaitComplete:
    case EventKind::BarrierPhase:
    case EventKind::SchedInline:
    case EventKind::SpawnInlined:
    case EventKind::JoinTimeout:
      return true;
    default:
      return false;
  }
}

/// Measured overhead intervals: payload is the duration in ns.
bool is_duration(EventKind k) {
  switch (k) {
    case EventKind::JoinVerdict:
    case EventKind::AwaitVerdict:
    case EventKind::CycleScan:
    case EventKind::JoinBlocked:
    case EventKind::AwaitBlocked:
      return true;
    default:
      return false;
  }
}

/// True when event `a` finishes later than `b` (predecessor comparison;
/// seq breaks timestamp ties deterministically).
bool later(const Event& a, const Event& b) {
  return a.t_ns != b.t_ns ? a.t_ns > b.t_ns : a.seq > b.seq;
}

}  // namespace

CriticalPathReport analyze_critical_path(const std::vector<Event>& events) {
  CriticalPathReport rep;

  // Index the spine in seq order (drain() output is already seq-sorted, but
  // the walk only needs per-pass monotonicity, which we re-establish here).
  std::vector<std::size_t> order(events.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&events](std::size_t a, std::size_t b) {
    return events[a].seq < events[b].seq;
  });

  std::vector<std::size_t> prev_spine(events.size(), kNone);
  std::vector<std::size_t> cross_pred(events.size(), kNone);
  // Duration event -> the actor's next spine event (its attribution anchor).
  std::vector<std::size_t> anchor(events.size(), kNone);

  std::unordered_map<std::uint64_t, std::size_t> last_spine_of;  // actor → idx
  std::unordered_map<std::uint64_t, std::size_t> spawn_of;       // child → idx
  std::unordered_map<std::uint64_t, std::size_t> end_of;         // task → idx
  std::unordered_map<std::uint64_t, std::size_t> fulfill_of;     // promise → idx
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> pending_of;

  std::size_t terminal = kNone;
  for (std::size_t i : order) {
    const Event& e = events[i];
    if (is_duration(e.kind)) {
      ++rep.causal_events;
      pending_of[e.actor].push_back(i);
      continue;
    }
    if (!is_spine(e.kind)) continue;
    ++rep.causal_events;

    // Program order within the actor, and anchor any overhead measured
    // since the actor's previous spine step to this one.
    auto [it, fresh] = last_spine_of.try_emplace(e.actor, i);
    if (!fresh) {
      prev_spine[i] = it->second;
      it->second = i;
    }
    if (auto p = pending_of.find(e.actor); p != pending_of.end()) {
      for (std::size_t d : p->second) anchor[d] = i;
      p->second.clear();
    }

    switch (e.kind) {
      case EventKind::TaskSpawn:
        spawn_of[e.target] = i;
        break;
      case EventKind::TaskStart:
        if (auto s = spawn_of.find(e.actor); s != spawn_of.end()) {
          cross_pred[i] = s->second;
        }
        break;
      case EventKind::TaskEnd:
        end_of[e.actor] = i;
        break;
      case EventKind::JoinComplete:
        if (auto t = end_of.find(e.target); t != end_of.end()) {
          cross_pred[i] = t->second;
        }
        break;
      case EventKind::PromiseFulfill:
        fulfill_of.try_emplace(e.target, i);  // first fulfill wins
        break;
      case EventKind::AwaitComplete:
        if (auto f = fulfill_of.find(e.target); f != fulfill_of.end()) {
          cross_pred[i] = f->second;
        }
        break;
      default:
        break;
    }
    terminal = i;
  }

  // Backward last-arrival walk: from the final spine event, repeatedly step
  // to the latest-finishing causal predecessor.
  std::vector<bool> on_walk(events.size(), false);
  std::vector<std::size_t> path_idx;
  for (std::size_t cur = terminal; cur != kNone;) {
    on_walk[cur] = true;
    path_idx.push_back(cur);
    const std::size_t a = prev_spine[cur];
    const std::size_t b = cross_pred[cur];
    if (a == kNone) {
      cur = b;
    } else if (b == kNone) {
      cur = a;
    } else {
      cur = later(events[a], events[b]) ? a : b;
    }
  }
  std::reverse(path_idx.begin(), path_idx.end());
  rep.path.reserve(path_idx.size());
  for (std::size_t i : path_idx) rep.path.push_back(events[i]);
  if (!rep.path.empty()) {
    rep.span_ns = rep.path.back().t_ns - rep.path.front().t_ns;
  }

  // Attribute each overhead interval: on-path iff its anchor (the spine
  // step it gated) lies on the walk. A blocked join's anchor is its
  // JoinComplete, so "blocked time on the critical path" is the wait whose
  // completion the path runs through — during which the path itself is
  // inside the joined child. Verdicts share the anchor, which makes the
  // on-path policy-check figure an upper bound: a ruling that overlapped
  // the child's execution is charged as if serial. Unanchored intervals
  // (the actor recorded no later spine event) count off-path.
  std::map<std::uint8_t, CriticalPathReport::TenantLane> lanes;
  const auto category =
      [](EventKind k) -> PathAttribution CriticalPathReport::TenantLane::* {
    switch (k) {
      case EventKind::JoinVerdict:
      case EventKind::AwaitVerdict:
        return &CriticalPathReport::TenantLane::policy_check;
      case EventKind::CycleScan:
        return &CriticalPathReport::TenantLane::cycle_scan;
      case EventKind::JoinBlocked:
        return &CriticalPathReport::TenantLane::blocked_join;
      default:
        return &CriticalPathReport::TenantLane::blocked_await;
    }
  };
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    if (!is_duration(e.kind)) continue;
    PathAttribution* cat = nullptr;
    switch (e.kind) {
      case EventKind::JoinVerdict:
      case EventKind::AwaitVerdict:
        cat = &rep.policy_check;
        break;
      case EventKind::CycleScan:
        cat = &rep.cycle_scan;
        break;
      case EventKind::JoinBlocked:
        cat = &rep.blocked_join;
        break;
      default:
        cat = &rep.blocked_await;
        break;
    }
    // The same interval lands in exactly one tenant lane, so the lanes
    // partition each category and per-tenant sums reconcile globally.
    auto& lane = lanes[e.tenant];
    lane.tenant = e.tenant;
    PathAttribution& slice = lane.*category(e.kind);
    const bool on = anchor[i] != kNone && on_walk[anchor[i]];
    ++cat->count;
    ++slice.count;
    if (on) {
      ++cat->on_path_count;
      cat->on_path_ns += e.payload;
      ++slice.on_path_count;
      slice.on_path_ns += e.payload;
    } else {
      cat->off_path_ns += e.payload;
      slice.off_path_ns += e.payload;
    }
  }
  rep.tenants.reserve(lanes.size());
  for (auto& [tenant, lane] : lanes) rep.tenants.push_back(lane);
  return rep;
}

namespace {

std::string ns_str(std::uint64_t ns) {
  std::ostringstream os;
  if (ns >= 10'000'000) {
    os << ns / 1'000'000 << '.' << (ns / 100'000) % 10 << "ms";
  } else if (ns >= 10'000) {
    os << ns / 1'000 << '.' << (ns / 100) % 10 << "us";
  } else {
    os << ns << "ns";
  }
  return os.str();
}

void render(std::ostringstream& os, const char* name,
            const PathAttribution& a) {
  os << "  " << name << ": total " << ns_str(a.total_ns()) << ", on-path "
     << ns_str(a.on_path_ns) << " (" << a.on_path_count << "/" << a.count
     << " intervals), off-path " << ns_str(a.off_path_ns) << "\n";
}

}  // namespace

std::string CriticalPathReport::to_string() const {
  std::ostringstream os;
  os << "critical path: " << path.size() << " spine events spanning "
     << ns_str(span_ns) << " (" << causal_events << " causal events)\n";
  render(os, "policy-check ", policy_check);
  render(os, "cycle-scan   ", cycle_scan);
  render(os, "blocked-join ", blocked_join);
  render(os, "blocked-await", blocked_await);
  os << "  verifier     : on-path " << ns_str(verifier_on_path_ns())
     << ", off-path " << ns_str(verifier_off_path_ns()) << "\n";
  // Skip the tenant table when everything is one unattributed lane — it
  // would just repeat the global rows.
  const bool sliced =
      tenants.size() > 1 || (tenants.size() == 1 && tenants[0].tenant != 0);
  if (sliced) {
    for (const TenantLane& lane : tenants) {
      if (lane.tenant == 0) {
        os << "  tenant <unattributed>:\n";
      } else {
        os << "  tenant " << static_cast<unsigned>(lane.tenant - 1) << ":\n";
      }
      os << "  ";
      render(os, "policy-check ", lane.policy_check);
      os << "  ";
      render(os, "cycle-scan   ", lane.cycle_scan);
      os << "  ";
      render(os, "blocked-join ", lane.blocked_join);
      os << "  ";
      render(os, "blocked-await", lane.blocked_await);
    }
  }
  return os.str();
}

}  // namespace tj::obs
