#pragma once
// Continuous telemetry export: a background sampler that turns the
// introspection snapshot machinery (runtime/introspect.hpp) into a time
// series. Every cadence_ms it captures a RuntimeSnapshot plus every metrics
// histogram's summary(), and appends one self-contained JSON object per
// sample to a JSONL file; optionally it also rewrites a Prometheus
// text-exposition file (file-based scrape target — this tree has no HTTP
// server and needs none for node-exporter-style collection).
//
// Cost contract (same as the flight recorder): when the runtime's obs
// config is off there is no recorder, the sink refuses to start, and
// nothing samples — the hot path never knows telemetry exists. When on,
// the cost is one snapshot + O(histograms) relaxed reads per tick on a
// dedicated thread; the instrumented code paths pay nothing extra.
//
// Every counter and quantile in a sample is cumulative since runtime
// construction; the per-tick "delta" object carries the count/sum_ns
// increments since the previous sample for rate computation. The final
// sample (written synchronously by stop(), after the workload quiesced)
// therefore reconciles exactly with the runtime's end-of-run stats —
// loadgen asserts that, sample-file against gate_stats(), per run.
//
// This header lives with the other obs sinks but the implementation is
// compiled into the tj_runtime library: sampling needs RuntimeSnapshot,
// and the obs library must stay below the runtime in the layering.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace tj::runtime {
class Runtime;
struct RuntimeSnapshot;
}  // namespace tj::runtime

namespace tj::obs {

struct TelemetryConfig {
  std::string jsonl_path;       ///< "" disables the JSONL time series
  std::string prometheus_path;  ///< "" disables the Prometheus dump
  std::uint32_t cadence_ms = 250;
  /// Stamped into every sample as "scheduler" (loadgen runs one runtime
  /// per scheduler mode into a shared stream); "" omits the field.
  std::string scheduler_label;
};

class TelemetrySink {
 public:
  /// Construction is passive: nothing samples until start(). When the
  /// runtime has no recorder (Config::obs off) the sink is permanently
  /// inert — start() is a no-op and active() stays false.
  TelemetrySink(const runtime::Runtime& rt, TelemetryConfig cfg);
  ~TelemetrySink();  // stop() if still running
  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  /// Adds a service-owned histogram (e.g. loadgen's request latency) to
  /// every sample under hist.<name>. Call before start(); the histogram
  /// must outlive the sink.
  void register_histogram(std::string name, const LatencyHistogram* h);

  /// Launches the sampler thread. No-op when inert or already started.
  void start();

  /// Stops the sampler, takes one final synchronous sample (the
  /// reconciliation anchor), flushes the JSONL stream and rewrites the
  /// Prometheus dump. Idempotent.
  void stop();

  /// True once start() succeeded (recorder attached + output configured).
  bool active() const { return active_.load(std::memory_order_acquire); }

  /// Samples written so far (including the final one after stop()).
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Captures and writes one sample immediately (also what the sampler
  /// thread and stop() call). Exposed so tests can drive the sink without
  /// timing dependence. No-op when the sink never became active.
  void sample_now();

 private:
  struct ExtraHist {
    std::string name;
    const LatencyHistogram* hist;
  };
  struct DeltaState {
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
  };

  void sampler_loop();
  /// Pre: mu_ held. Renders + writes one sample, updates delta state.
  void sample_locked();
  std::string render_prometheus(const runtime::RuntimeSnapshot& s);

  const runtime::Runtime& rt_;
  const TelemetryConfig cfg_;
  std::vector<ExtraHist> extra_;

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> samples_{0};

  std::mutex mu_;  // guards jsonl_, delta state, and sampling itself
  std::ofstream jsonl_;
  std::vector<DeltaState> hist_prev_;  // registry hists then extra_, in order
  std::uint64_t prev_joins_checked_ = 0;
  std::uint64_t prev_requests_checked_ = 0;
  std::uint64_t prev_lock_acquisitions_ = 0;
  std::uint64_t prev_lock_contended_ = 0;
  std::chrono::steady_clock::time_point epoch_{};

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;  // guarded by stop_mu_
  std::thread thread_;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace tj::obs
