#pragma once
// Lock-free single-producer / single-consumer ring buffer, the per-thread
// storage of the flight recorder. Capacity is rounded up to a power of two;
// a full ring REJECTS the push (drop-newest) rather than overwriting — the
// recorder counts the drop, so event loss is always explicit, and the
// retained prefix stays contiguous from the start of the run (which is what
// the runtime→formalism replay bridge needs).
//
// Concurrency contract:
//   * try_push        — the single producer thread only;
//   * try_pop         — one consumer at a time, and only while no concurrent
//                       peek is running (in the recorder: after quiescence);
//   * for_each_live   — any thread, concurrently with the producer: it reads
//                       only slots published before its head load, and those
//                       slots are immutable until a consumer pops them
//                       (drop-newest means the producer never overwrites a
//                       live slot).

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace tj::obs {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return mask_ + 1; }

  /// False iff the ring is full (the caller counts the drop).
  bool try_push(const T& v) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head - tail_.load(std::memory_order_acquire) > mask_) {
      return false;  // full
    }
    slots_[head & mask_] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// False iff the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    out = slots_[tail & mask_];
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Entries currently buffered (racy snapshot under concurrency).
  std::size_t size() const {
    return head_.load(std::memory_order_acquire) -
           tail_.load(std::memory_order_acquire);
  }

  /// Visits every live (published, unpopped) entry oldest-first. Safe
  /// concurrently with the producer; see the concurrency contract above.
  template <typename F>
  void for_each_live(F&& f) const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    for (std::size_t i = tail; i != head; ++i) {
      f(slots_[i & mask_]);
    }
  }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;
  alignas(64) std::atomic<std::size_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::size_t> tail_{0};  // consumer-owned
};

}  // namespace tj::obs
