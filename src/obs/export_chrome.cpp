#include "obs/export_chrome.hpp"

#include <sstream>

namespace tj::obs {

namespace {

/// ts/dur fields are microseconds; emit fractional µs to keep ns precision.
void write_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << (ns % 1000) / 100 << (ns % 100) / 10 << ns % 10;
}

void write_common(std::ostringstream& os, const Event& e, const char* ph,
                  std::uint64_t ts_ns) {
  os << R"({"name":")" << to_string(e.kind) << R"(","cat":"tj","ph":")" << ph
     << R"(","pid":1,"tid":)" << e.actor << R"(,"ts":)";
  write_us(os, ts_ns);
}

void write_args(std::ostringstream& os, const Event& e) {
  os << R"(,"args":{"seq":)" << e.seq << R"(,"target":)" << e.target
     << R"(,"payload":)" << e.payload << R"(,"policy":)"
     << static_cast<unsigned>(e.policy) << R"(,"detail":)"
     << static_cast<unsigned>(e.detail) << R"(,"flags":)"
     << static_cast<unsigned>(e.flags) << "}}";
}

/// Flow arrows ("s" start / "f" finish) make Perfetto draw the causal edges
/// the critical-path profiler walks: TaskSpawn→TaskStart and
/// TaskEnd→JoinComplete. Flow ids live in one namespace, so the two edge
/// families interleave the task uid with a low bit.
void write_flow(std::ostringstream& os, const char* name, const char* ph,
                std::uint64_t tid, std::uint64_t ts_ns, std::uint64_t id) {
  os << ",\n"
     << R"({"name":")" << name << R"(","cat":"tj-flow","ph":")" << ph
     << R"(","pid":1,"tid":)" << tid << R"(,"ts":)";
  write_us(os, ts_ns);
  os << R"(,"id":)" << id;
  if (ph[0] == 'f') os << R"(,"bp":"e")";
  os << "}";
}

std::uint64_t spawn_flow_id(std::uint64_t task_uid) { return task_uid * 2; }
std::uint64_t join_flow_id(std::uint64_t task_uid) { return task_uid * 2 + 1; }

}  // namespace

std::string to_chrome_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    switch (e.kind) {
      case EventKind::TaskStart:
        write_common(os, e, "B", e.t_ns);
        write_args(os, e);
        write_flow(os, "spawn", "f", e.actor, e.t_ns, spawn_flow_id(e.actor));
        break;
      case EventKind::TaskEnd:
        write_common(os, e, "E", e.t_ns);
        write_args(os, e);
        write_flow(os, "join", "s", e.actor, e.t_ns, join_flow_id(e.actor));
        break;
      case EventKind::TaskSpawn:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        write_flow(os, "spawn", "s", e.actor, e.t_ns,
                   spawn_flow_id(e.target));
        break;
      case EventKind::JoinComplete:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        write_flow(os, "join", "f", e.actor, e.t_ns, join_flow_id(e.target));
        break;
      case EventKind::CycleScan:
      case EventKind::JoinBlocked:
      case EventKind::AwaitBlocked: {
        // payload is the measured duration; the event is emitted at the end
        // of the interval, so the slice starts payload ns earlier.
        const std::uint64_t start =
            e.t_ns >= e.payload ? e.t_ns - e.payload : 0;
        write_common(os, e, "X", start);
        os << R"(,"dur":)";
        write_us(os, e.payload);
        write_args(os, e);
        break;
      }
      default:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        break;
    }
  }
  os << "]}\n";
  return os.str();
}

}  // namespace tj::obs
