#include "obs/export_chrome.hpp"

#include <set>
#include <sstream>

namespace tj::obs {

namespace {

/// Per-tenant swim lanes: each tenant renders as its own Chrome-trace
/// "process" so a service trace separates cleanly by lane. pid 1 is the
/// unattributed lane (no RequestScope / pre-service events); tenant t
/// (Event::tenant = t+1) renders as pid 2+t.
std::uint64_t lane_pid(const Event& e) { return 1 + e.tenant; }

/// ts/dur fields are microseconds; emit fractional µs to keep ns precision.
void write_us(std::ostringstream& os, std::uint64_t ns) {
  os << ns / 1000 << '.' << (ns % 1000) / 100 << (ns % 100) / 10 << ns % 10;
}

void write_common(std::ostringstream& os, const Event& e, const char* ph,
                  std::uint64_t ts_ns) {
  os << R"({"name":")" << to_string(e.kind) << R"(","cat":"tj","ph":")" << ph
     << R"(","pid":)" << lane_pid(e) << R"(,"tid":)" << e.actor
     << R"(,"ts":)";
  write_us(os, ts_ns);
}

void write_args(std::ostringstream& os, const Event& e) {
  os << R"(,"args":{"seq":)" << e.seq << R"(,"target":)" << e.target
     << R"(,"payload":)" << e.payload << R"(,"policy":)"
     << static_cast<unsigned>(e.policy) << R"(,"detail":)"
     << static_cast<unsigned>(e.detail) << R"(,"flags":)"
     << static_cast<unsigned>(e.flags) << R"(,"request":)" << e.request
     << R"(,"tenant":)"
     << (e.tenant == 0 ? -1 : static_cast<int>(e.tenant) - 1) << "}}";
}

/// Flow arrows ("s" start / "f" finish) make Perfetto draw the causal edges
/// the critical-path profiler walks: TaskSpawn→TaskStart and
/// TaskEnd→JoinComplete. Flow ids live in one namespace, so the two edge
/// families interleave the task uid with a low bit. Arrows bind to the
/// emitting event's own lane, so a cross-tenant spawn (e.g. untenanted root
/// forking a request task) draws across lanes.
void write_flow(std::ostringstream& os, const char* name, const char* ph,
                std::uint64_t pid, std::uint64_t tid, std::uint64_t ts_ns,
                std::uint64_t id) {
  os << ",\n"
     << R"({"name":")" << name << R"(","cat":"tj-flow","ph":")" << ph
     << R"(","pid":)" << pid << R"(,"tid":)" << tid << R"(,"ts":)";
  write_us(os, ts_ns);
  os << R"(,"id":)" << id;
  if (ph[0] == 'f') os << R"(,"bp":"e")";
  os << "}";
}

std::uint64_t spawn_flow_id(std::uint64_t task_uid) { return task_uid * 2; }
std::uint64_t join_flow_id(std::uint64_t task_uid) { return task_uid * 2 + 1; }

}  // namespace

std::string to_chrome_json(const std::vector<Event>& events) {
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  // Name each lane up front so viewers label them even before scrolling.
  std::set<std::uint8_t> tenants_seen;
  for (const Event& e : events) tenants_seen.insert(e.tenant);
  for (std::uint8_t t : tenants_seen) {
    if (!first) os << ",\n";
    first = false;
    os << R"({"name":"process_name","ph":"M","pid":)" << (1 + t)
       << R"(,"args":{"name":")";
    if (t == 0) {
      os << "runtime (unattributed)";
    } else {
      os << "tenant " << static_cast<unsigned>(t - 1);
    }
    os << R"("}})";
  }
  for (const Event& e : events) {
    if (!first) os << ",\n";
    first = false;
    switch (e.kind) {
      case EventKind::TaskStart:
        write_common(os, e, "B", e.t_ns);
        write_args(os, e);
        write_flow(os, "spawn", "f", lane_pid(e), e.actor, e.t_ns,
                   spawn_flow_id(e.actor));
        break;
      case EventKind::TaskEnd:
        write_common(os, e, "E", e.t_ns);
        write_args(os, e);
        write_flow(os, "join", "s", lane_pid(e), e.actor, e.t_ns,
                   join_flow_id(e.actor));
        break;
      case EventKind::TaskSpawn:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        write_flow(os, "spawn", "s", lane_pid(e), e.actor, e.t_ns,
                   spawn_flow_id(e.target));
        break;
      case EventKind::JoinComplete:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        write_flow(os, "join", "f", lane_pid(e), e.actor, e.t_ns,
                   join_flow_id(e.target));
        break;
      case EventKind::WorkerSample: {
        // Telemetry worker-state census → one counter track; Perfetto
        // stacks the per-state series into an area chart of the pool.
        os << R"({"name":"worker states","cat":"tj","ph":"C","pid":)"
           << lane_pid(e) << R"(,"tid":0,"ts":)";
        write_us(os, e.t_ns);
        os << R"(,"args":{)";
        for (unsigned i = 0; i < 5; ++i) {
          static const char* kStates[] = {"idle", "stealing", "running",
                                          "blocked_join", "blocked_lock"};
          os << (i == 0 ? "" : ",") << '"' << kStates[i] << "\":"
             << ((e.payload >> (12 * i)) & 0xfff);
        }
        os << "}}";
        break;
      }
      case EventKind::CycleScan:
      case EventKind::JoinBlocked:
      case EventKind::AwaitBlocked: {
        // payload is the measured duration; the event is emitted at the end
        // of the interval, so the slice starts payload ns earlier.
        const std::uint64_t start =
            e.t_ns >= e.payload ? e.t_ns - e.payload : 0;
        write_common(os, e, "X", start);
        os << R"(,"dur":)";
        write_us(os, e.payload);
        write_args(os, e);
        break;
      }
      default:
        write_common(os, e, "i", e.t_ns);
        os << R"(,"s":"t")";
        write_args(os, e);
        break;
    }
  }
  os << "]}\n";
  return os.str();
}

}  // namespace tj::obs
