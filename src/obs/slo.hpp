#pragma once
// Declarative SLO evaluation over the telemetry JSONL stream. A rule set
// like "p99_ms<250,shed_rate<=0.6,downgrade_level<=2,watchdog_cycles==0"
// is parsed once, then evaluated against the FINAL sample of a telemetry
// time series (every counter and quantile in the stream is cumulative, so
// the last sample is the end-of-run truth). Evaluation is deterministic:
// a metric the stream does not carry fails its rule with an explicit
// "missing" verdict instead of passing vacuously — CI gates on the exit
// code, and a silently-skipped rule is how SLOs rot.
//
// The same header provides the minimal JSON DOM the telemetry consumers
// (SLO gate, loadgen reconciliation, tj_top) share. No external JSON
// dependency is available in this tree; the parser handles exactly the
// JSON the TelemetrySink writes plus ordinary escapes.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace tj::obs::slo {

/// Minimal immutable JSON value. Numbers are doubles (the telemetry
/// stream's counters stay below 2^53, where doubles are exact).
class Json {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::Object; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_number() const { return kind_ == Kind::Number; }

  double number() const { return num_; }
  bool boolean() const { return num_ != 0; }
  const std::string& str() const { return str_; }
  const std::vector<Json>& array() const { return arr_; }
  const std::vector<std::pair<std::string, Json>>& members() const {
    return obj_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;

  /// Dotted-path lookup ("gate.requests_shed"); nullptr when any hop is
  /// absent. Array hops are not supported — telemetry rules address scalars.
  const Json* at_path(std::string_view dotted) const;

  // Data members are public so the (file-local) parser can build values;
  // consumers should stick to the accessors above.
  Kind kind_ = Kind::Null;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

/// Parses one JSON document. Throws std::runtime_error with a position on
/// malformed input (CI surfaces it as a schema failure).
Json parse_json(std::string_view text);

/// Parses a JSONL file: one Json per non-empty line. Throws on I/O or
/// parse failure.
std::vector<Json> parse_jsonl_file(const std::string& path);

/// One declarative rule: metric OP bound.
struct Rule {
  enum class Op { LT, LE, GT, GE, EQ, NE };
  std::string metric;
  Op op = Op::LT;
  double bound = 0;

  std::string to_string() const;
};

/// Parses "metric<bound,metric2>=bound2,..." (',' or ';' separated).
/// Throws std::runtime_error on syntax errors.
std::vector<Rule> parse_rules(std::string_view spec);

struct RuleResult {
  Rule rule;
  double actual = 0;
  bool missing = false;  ///< metric absent from the sample ⇒ fails
  bool pass = false;

  std::string to_string() const;
};

struct Evaluation {
  bool pass = false;
  std::size_t samples = 0;  ///< time-series length evaluated over
  std::vector<RuleResult> results;

  /// One line per rule, "PASS metric<bound (actual ...)" style.
  std::string to_string() const;
};

/// Evaluates rules against the final sample of `samples`. An empty series
/// fails every rule (missing). Built-in metric names resolve as:
///   p50_ms/p90_ms/p99_ms/p999_ms  → hist.request_latency_ns.<q>_ns / 1e6
///   shed_rate         → gate.requests_shed / max(1, gate.requests_checked)
///   downgrade_level   → ladder_level
///   watchdog_cycles   → watchdog_cycles
///   recovery_p99_ms   → hist.recovery_ns.p99_ns / 1e6 (async mode)
/// Anything else is a dotted path into the sample object.
Evaluation evaluate(const std::vector<Json>& samples,
                    const std::vector<Rule>& rules);

/// Convenience: parse_jsonl_file + evaluate.
Evaluation evaluate_file(const std::string& path,
                         const std::vector<Rule>& rules);

}  // namespace tj::obs::slo
