#pragma once
// Contention observatory: drop-in profiled lock wrappers with a per-site
// registry, plus the per-worker state board the scheduler publishes into.
//
// The repo's hot path still serializes through a handful of mutexes (the
// gate's await/witness locks, the WFG graph lock, the scheduler queue) —
// ROADMAP item 1 names that as the scalability ceiling. Before any of it
// can be rebuilt around atomics, it has to be *measurable*: which site,
// how often contended, how long the waits, and how much of the worker
// pool the waiting costs. `ProfiledMutex` answers the lock questions;
// `WorkerStateBoard` answers the pool question.
//
// Cost contract (mirrors the flight recorder's):
//   - profiling OFF (the default): `lock()` is one relaxed load plus the
//     bare `std::mutex::lock()`. No clock reads, no registry entry is ever
//     created — the registry stays empty ("registry-inert").
//   - profiling ON, uncontended: `try_lock` success plus ONE relaxed
//     counter increment. Still no clock read.
//   - profiling ON, contended: two clock reads bracketing the blocking
//     `lock()`, a wait-ns histogram record, and a hold-ns record at unlock
//     when the hold exceeded `kLongHoldNs`. Hold time is only measured for
//     contended acquisitions — timing every uncontended hold would put a
//     clock read on the fast path, which the contract forbids.
//
// Profiling is enabled by a process-wide refcount: each Runtime whose
// `Config::obs.enabled` is set holds a `ContentionEnableGuard`; the
// scaling benchmark retains it directly (no recorder needed). Sites are
// interned by *name* — two mutexes constructed with the same site string
// share one `SiteStats` — and the registry is process-global and
// cumulative: counters never reset, so readers diff snapshots.
//
// Reconciliation invariant (exported through telemetry and asserted by
// loadgen/tests): per site, acquisitions == uncontended + contended
// exactly, and wait_count <= contended always (writers bump `contended`
// before recording the wait; readers read the wait count first). Quiesced,
// wait_count == contended exactly.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace tj::obs {

// ---- global enable refcount ------------------------------------------------

/// True while at least one retainer (Runtime with obs on, or a benchmark)
/// wants lock/worker profiling. One relaxed load; safe from any thread.
bool contention_profiling_enabled();
void contention_profiling_retain();
void contention_profiling_release();

/// RAII retainer. `Runtime` holds one (active iff `Config::obs.enabled`);
/// `bench_scaling` holds one per cell without any recorder.
class ContentionEnableGuard {
 public:
  explicit ContentionEnableGuard(bool on) : on_(on) {
    if (on_) contention_profiling_retain();
  }
  ~ContentionEnableGuard() {
    if (on_) contention_profiling_release();
  }
  ContentionEnableGuard(const ContentionEnableGuard&) = delete;
  ContentionEnableGuard& operator=(const ContentionEnableGuard&) = delete;

 private:
  bool on_;
};

// ---- per-site registry -----------------------------------------------------

/// One interned lock site. Stable address for the wrapper to cache; all
/// fields relaxed atomics (LatencyHistogram is already relaxed inside).
struct SiteStats {
  std::string name;
  std::atomic<std::uint64_t> uncontended{0};
  std::atomic<std::uint64_t> contended{0};
  LatencyHistogram wait_ns;  ///< time blocked in a contended lock()
  LatencyHistogram hold_ns;  ///< long holds (>= kLongHoldNs), contended only
};

/// Plain-value snapshot of one site, read in the order that preserves the
/// invariant wait.count <= contended <= acquisitions under concurrency.
struct SiteSnapshot {
  std::string name;
  std::uint64_t uncontended = 0;
  std::uint64_t contended = 0;
  std::uint64_t acquisitions = 0;  ///< uncontended + contended at read time
  LatencyHistogram::Summary wait;
  LatencyHistogram::Summary hold;
};

/// Process-global site table. Interning takes a plain mutex (cold: once
/// per site per process); reading snapshots is lock-free after the site
/// list is copied. Sites are never removed — addresses are stable for the
/// process lifetime, which is what lets wrappers cache the pointer.
class ContentionRegistry {
 public:
  static ContentionRegistry& instance();

  /// Returns the (shared) stats slot for `name`, creating it on first use.
  SiteStats* intern(const char* name);

  std::vector<SiteSnapshot> snapshot() const;
  std::size_t site_count() const;

  /// Human-readable table (trace_dump --metrics, introspection fallback).
  std::string to_string() const;

 private:
  ContentionRegistry() = default;

  mutable std::mutex mu_;
  // deque-like stability via pointers; vector of owning pointers keeps
  // iteration simple and addresses stable across growth.
  std::vector<SiteStats*> sites_;
};

/// Snapshot a single interned site (nullptr-safe helper used by tests).
SiteSnapshot snapshot_site(const SiteStats& s);

// ---- worker-state timelines ------------------------------------------------

/// What a scheduler worker is doing right now. Published always (one
/// relaxed store per transition); *timed* only while profiling is enabled.
enum class WorkerState : std::uint8_t {
  Idle = 0,         ///< parked on the queue condvar, nothing to do
  Stealing = 1,     ///< woke up, dequeuing / looking for work
  Running = 2,      ///< executing a claimed task body
  BlockedJoin = 3,  ///< blocked in an admitted join/await
  BlockedLock = 4,  ///< blocked acquiring a profiled runtime lock
};
inline constexpr std::size_t kWorkerStateCount = 5;

const char* to_string(WorkerState s);

std::uint64_t contention_now_ns();

/// One worker's published state plus its cumulative per-state timeline.
struct WorkerSlot {
  std::atomic<std::uint8_t> state{
      static_cast<std::uint8_t>(WorkerState::Idle)};
  std::atomic<std::uint64_t> state_ns[kWorkerStateCount] = {};
  std::atomic<std::uint64_t> last_ns{0};  ///< 0 = timing not started
  std::atomic<std::uint64_t> transitions{0};

  /// Publish a transition. The state word is always stored; clock reads
  /// and accumulation happen only while profiling is enabled (so the
  /// scheduler pays one relaxed store per transition when off). A slot
  /// whose timing starts mid-run begins accumulating at its first enabled
  /// transition (`last_ns == 0` guards the first interval).
  void set_state(WorkerState s) {
    const std::uint8_t prev =
        state.exchange(static_cast<std::uint8_t>(s),
                       std::memory_order_relaxed);
    if (!contention_profiling_enabled()) return;
    const std::uint64_t now = contention_now_ns();
    const std::uint64_t last =
        last_ns.exchange(now, std::memory_order_relaxed);
    if (last != 0 && now > last) {
      state_ns[prev].fetch_add(now - last, std::memory_order_relaxed);
    }
    transitions.fetch_add(1, std::memory_order_relaxed);
  }

  WorkerState current() const {
    return static_cast<WorkerState>(state.load(std::memory_order_relaxed));
  }
};

/// Scheduler-owned board of worker slots. Registration is cold (worker
/// start); readers fold the slots into per-state totals, charging each
/// worker's in-progress interval to its current state (one-transition
/// read skew, acceptable for a profile).
class WorkerStateBoard {
 public:
  WorkerStateBoard() = default;
  ~WorkerStateBoard();
  WorkerStateBoard(const WorkerStateBoard&) = delete;
  WorkerStateBoard& operator=(const WorkerStateBoard&) = delete;

  /// Stable slot for one worker thread. Starts in Idle; when profiling is
  /// already enabled the timeline epoch is stamped immediately.
  WorkerSlot* register_worker();

  struct Totals {
    std::size_t workers = 0;
    std::uint64_t current[kWorkerStateCount] = {};   ///< workers in state now
    std::uint64_t state_ns[kWorkerStateCount] = {};  ///< cumulative + in-flight
    std::uint64_t transitions = 0;
    std::uint64_t total_ns() const {
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < kWorkerStateCount; ++i) t += state_ns[i];
      return t;
    }
    /// Mean number of workers actually Running over the timed window —
    /// the effective-parallelism number the scaling story is about.
    double effective_parallelism() const {
      const std::uint64_t t = total_ns();
      return t == 0 ? 0.0
                    : static_cast<double>(
                          state_ns[static_cast<std::size_t>(
                              WorkerState::Running)]) *
                          static_cast<double>(workers) /
                          static_cast<double>(t);
    }
  };
  Totals totals() const;

  std::string to_string() const;

 private:
  mutable std::mutex mu_;
  std::vector<WorkerSlot*> slots_;
};

/// TLS slot pointer for the calling thread: set by the scheduler's worker
/// loop, read by ProfiledMutex's contended path to publish BlockedLock.
/// Null on non-worker threads (profiled locks still time waits there).
WorkerSlot*& tls_worker_slot();

/// RAII state transition that restores the previous state on exit; no-op
/// when `slot` is null. Used for Running / BlockedJoin / BlockedLock
/// brackets so nesting (e.g. cooperative inline help) composes.
class ScopedWorkerState {
 public:
  ScopedWorkerState(WorkerSlot* slot, WorkerState s) : slot_(slot) {
    if (slot_ != nullptr) {
      prev_ = slot_->current();
      slot_->set_state(s);
    }
  }
  ~ScopedWorkerState() {
    if (slot_ != nullptr) slot_->set_state(prev_);
  }
  ScopedWorkerState(const ScopedWorkerState&) = delete;
  ScopedWorkerState& operator=(const ScopedWorkerState&) = delete;

 private:
  WorkerSlot* slot_;
  WorkerState prev_ = WorkerState::Idle;
};

// ---- profiled lock wrappers ------------------------------------------------

/// Holds at or above this are "long" and land in the site's hold_ns
/// histogram (contended acquisitions only — see the cost contract).
inline constexpr std::uint64_t kLongHoldNs = 100'000;  // 100 µs

/// Drop-in `std::mutex` replacement satisfying Lockable, so deduced
/// `std::scoped_lock` / `std::unique_lock` / `std::lock_guard` and
/// `std::condition_variable_any` work unchanged. Construct with a stable
/// site-name literal; instances sharing a name share one registry slot.
class ProfiledMutex {
 public:
  explicit ProfiledMutex(const char* site) : site_name_(site) {}
  ProfiledMutex(const ProfiledMutex&) = delete;
  ProfiledMutex& operator=(const ProfiledMutex&) = delete;

  void lock() {
    if (!contention_profiling_enabled()) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SiteStats* s = stats();
    const std::uint64_t t0 = contention_now_ns();
    {
      ScopedWorkerState blocked(tls_worker_slot(), WorkerState::BlockedLock);
      mu_.lock();
    }
    const std::uint64_t t1 = contention_now_ns();
    // Order matters for the reconciliation invariant: contended is bumped
    // BEFORE the wait record, and readers read the wait count first, so
    // wait_count <= contended at every instant.
    s->contended.fetch_add(1, std::memory_order_relaxed);
    s->wait_ns.record(t1 - t0);
    acquired_ns_ = t1;  // plain field: guarded by the mutex we now hold
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (contention_profiling_enabled()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void unlock() {
    if (acquired_ns_ != 0) {
      const std::uint64_t hold = contention_now_ns() - acquired_ns_;
      acquired_ns_ = 0;
      // stats() is already cached: only a contended lock() stamps
      // acquired_ns_, and that path interned the site.
      if (hold >= kLongHoldNs) stats()->hold_ns.record(hold);
    }
    mu_.unlock();
  }

  const char* site_name() const { return site_name_; }
  /// Null until the first profiled acquisition (registry-inert when off).
  SiteStats* site() const { return site_.load(std::memory_order_acquire); }

 private:
  SiteStats* stats() {
    SiteStats* s = site_.load(std::memory_order_acquire);
    if (s == nullptr) {
      s = ContentionRegistry::instance().intern(site_name_);
      site_.store(s, std::memory_order_release);
    }
    return s;
  }

  std::mutex mu_;
  const char* site_name_;
  std::atomic<SiteStats*> site_{nullptr};
  std::uint64_t acquired_ns_ = 0;  ///< nonzero while a contended hold runs
};

/// `std::shared_mutex` counterpart (SharedLockable + Lockable). Exclusive
/// acquisitions follow ProfiledMutex's contract exactly; shared
/// acquisitions count and time waits but never hold time (many concurrent
/// shared holders cannot share one plain stamp field).
class ProfiledSharedMutex {
 public:
  explicit ProfiledSharedMutex(const char* site) : site_name_(site) {}
  ProfiledSharedMutex(const ProfiledSharedMutex&) = delete;
  ProfiledSharedMutex& operator=(const ProfiledSharedMutex&) = delete;

  void lock() {
    if (!contention_profiling_enabled()) {
      mu_.lock();
      return;
    }
    if (mu_.try_lock()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SiteStats* s = stats();
    const std::uint64_t t0 = contention_now_ns();
    {
      ScopedWorkerState blocked(tls_worker_slot(), WorkerState::BlockedLock);
      mu_.lock();
    }
    const std::uint64_t t1 = contention_now_ns();
    s->contended.fetch_add(1, std::memory_order_relaxed);
    s->wait_ns.record(t1 - t0);
    acquired_ns_ = t1;
  }

  bool try_lock() {
    if (!mu_.try_lock()) return false;
    if (contention_profiling_enabled()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void unlock() {
    if (acquired_ns_ != 0) {
      const std::uint64_t hold = contention_now_ns() - acquired_ns_;
      acquired_ns_ = 0;
      if (hold >= kLongHoldNs) stats()->hold_ns.record(hold);
    }
    mu_.unlock();
  }

  void lock_shared() {
    if (!contention_profiling_enabled()) {
      mu_.lock_shared();
      return;
    }
    if (mu_.try_lock_shared()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    SiteStats* s = stats();
    const std::uint64_t t0 = contention_now_ns();
    {
      ScopedWorkerState blocked(tls_worker_slot(), WorkerState::BlockedLock);
      mu_.lock_shared();
    }
    const std::uint64_t t1 = contention_now_ns();
    s->contended.fetch_add(1, std::memory_order_relaxed);
    s->wait_ns.record(t1 - t0);
  }

  bool try_lock_shared() {
    if (!mu_.try_lock_shared()) return false;
    if (contention_profiling_enabled()) {
      stats()->uncontended.fetch_add(1, std::memory_order_relaxed);
    }
    return true;
  }

  void unlock_shared() { mu_.unlock_shared(); }

  const char* site_name() const { return site_name_; }
  SiteStats* site() const { return site_.load(std::memory_order_acquire); }

 private:
  SiteStats* stats() {
    SiteStats* s = site_.load(std::memory_order_acquire);
    if (s == nullptr) {
      s = ContentionRegistry::instance().intern(site_name_);
      site_.store(s, std::memory_order_release);
    }
    return s;
  }

  std::shared_mutex mu_;
  const char* site_name_;
  std::atomic<SiteStats*> site_{nullptr};
  std::uint64_t acquired_ns_ = 0;  ///< exclusive contended holds only
};

}  // namespace tj::obs
