#pragma once
// Critical-path profiler: reconstructs the causal DAG of a recorded run
// from the drained event stream and attributes every measured overhead
// interval (policy checks, WFG cycle scans, blocked joins/awaits) to the
// critical path or off it. The causal edges are program order within each
// task plus the three cross-task dependences the runtime exposes:
// TaskSpawn→TaskStart, TaskEnd→JoinComplete, and
// PromiseFulfill→AwaitComplete. The critical path is the chain found by
// walking backward from the last task-scoped event, always stepping to the
// latest-finishing causal predecessor — the classic last-arrival path.
//
// Attribution invariant: every duration event lands in exactly one of
// on_path / off_path, so on + off equals the category total, which in turn
// equals the matching metrics histogram's sum_ns() for the same run
// (policy_check = JoinVerdict + AwaitVerdict payloads, etc.). ci.sh
// asserts this reconciliation on real benchmark runs.

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace tj::obs {

/// On-path vs off-path split of one overhead category. Counts and
/// nanoseconds each partition the category's total exactly.
struct PathAttribution {
  std::uint64_t on_path_ns = 0;
  std::uint64_t off_path_ns = 0;
  std::uint64_t on_path_count = 0;
  std::uint64_t count = 0;

  std::uint64_t total_ns() const { return on_path_ns + off_path_ns; }
};

struct CriticalPathReport {
  /// The critical path itself, oldest event first. Empty iff the stream
  /// held no task-scoped events.
  std::vector<Event> path;
  /// Wall span from the path's first to its last event.
  std::uint64_t span_ns = 0;
  /// Task-scoped events that entered the DAG (diagnostic denominator).
  std::uint64_t causal_events = 0;

  PathAttribution policy_check;   ///< JoinVerdict + AwaitVerdict rulings
  PathAttribution cycle_scan;     ///< WFG fallback scans
  PathAttribution blocked_join;   ///< wall time blocked in admitted joins
  PathAttribution blocked_await;  ///< wall time blocked in admitted awaits

  /// Per-tenant slice of the same attribution (service runs with request
  /// spans): answers "whose p999 is verifier-on-path vs queueing". Every
  /// duration event carries exactly one tenant stamp (0 = unattributed), so
  /// the lanes partition each global category exactly — summing a category
  /// across lanes reproduces the global split above. One lane per tenant
  /// value seen among duration events, ascending (unattributed first).
  struct TenantLane {
    std::uint8_t tenant = 0;  ///< Event::tenant encoding (0 = unattributed)
    PathAttribution policy_check;
    PathAttribution cycle_scan;
    PathAttribution blocked_join;
    PathAttribution blocked_await;
  };
  std::vector<TenantLane> tenants;

  /// Verifier overhead (ruling + fallback scan) on / off the path — the
  /// pair the harness exports per benchmark cell.
  std::uint64_t verifier_on_path_ns() const {
    return policy_check.on_path_ns + cycle_scan.on_path_ns;
  }
  std::uint64_t verifier_off_path_ns() const {
    return policy_check.off_path_ns + cycle_scan.off_path_ns;
  }

  /// Multi-line human-readable summary.
  std::string to_string() const;
};

/// Analyzes a drained event stream (recorder seq order; `drain()` output is
/// already sorted). Safe on incomplete streams — missing events can only
/// shorten the reconstructed path, never crash the walk.
CriticalPathReport analyze_critical_path(const std::vector<Event>& events);

}  // namespace tj::obs
