#pragma once
// Chrome Trace Event exporter: serializes a drained event stream as the
// JSON array format understood by chrome://tracing and Perfetto
// (https://ui.perfetto.dev). Each task becomes a timeline row (tid = task
// uid); TaskStart/TaskEnd pair into duration slices, blocked joins/awaits
// and cycle scans become complete ("X") slices spanning their measured
// duration, everything else is an instant.

#include <string>
#include <vector>

#include "obs/event.hpp"

namespace tj::obs {

/// Renders `events` (as returned by FlightRecorder::drain) as a
/// self-contained Chrome Trace Event JSON document.
std::string to_chrome_json(const std::vector<Event>& events);

}  // namespace tj::obs
