#pragma once
// Join watchdog: a stall detector for the waits the avoidance policy
// *admitted*. The policies guarantee no join closes a waits-for cycle, but a
// join can still block forever for reasons outside the policy's model — a
// target stuck on external I/O, a lost wakeup, a livelocked peer. The
// watchdog samples the set of currently-blocked joins/awaits, and when one
// has been blocked past the configured threshold it runs an on-demand WFG
// cycle scan and hands a diagnostic report (blocked task uids, join targets,
// the gate verdict that admitted each join, any cycles found) to a
// configurable callback.
//
// Cost model: when disabled (the default) the runtime never touches the
// watchdog — joins pay nothing. When enabled, a blocking join costs one
// mutex-guarded map insert/erase, and a sampling thread wakes every poll_ms.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace tj::core {
class JoinGate;
}

namespace tj::obs {
class FlightRecorder;
}

namespace tj::runtime {

class ResourceGovernor;
class RecoverySupervisor;

/// What the watchdog saw when it found stalled joins.
struct StallReport {
  struct BlockedJoin {
    std::uint64_t waiter = 0;   ///< blocked task uid
    std::uint64_t target = 0;   ///< joined task uid, or promise uid
    bool on_promise = false;    ///< true: an await, target is a promise uid
    const char* verdict = "";   ///< gate verdict that admitted the wait
    std::chrono::milliseconds blocked_for{0};
    /// Last recorded flight-recorder events naming the waiter or (for task
    /// joins) the target, formatted one per entry. Empty when the flight
    /// recorder is off.
    std::vector<std::string> recent_events;
  };
  /// ACTIVE join policy (core::to_string of the PolicyChoice) and its raw
  /// enum value — which verifier's verdicts admitted the stalled waits.
  /// Under a governor this is the current (possibly downgraded) ladder
  /// level, not the configured policy.
  std::string policy_name;
  std::uint8_t policy_id = 0;
  /// Degradation ladder level at report time (0 = configured policy; only
  /// meaningful when a governor is attached).
  std::uint32_t degradation_level = 0;
  /// Comma-joined governor transition history ("tj-gt->tj-sp@12ms(bytes)");
  /// empty when no governor is attached or nothing degraded yet.
  std::string degradation_history;
  std::vector<BlockedJoin> stalled;
  /// Task-level waits-for cycles found by the on-demand scan (normally
  /// empty: the policies prevent them; non-empty means the stall is a
  /// genuine deadlock the gate could not see, e.g. through external locks —
  /// or, in async mode, one the detector has confirmed but not yet broken).
  std::vector<std::vector<std::uint64_t>> cycles;
  /// Async (optimistic) mode context: whether the background detector is
  /// still trusted, how far behind the event stream it is, and what it has
  /// recovered so far. All-default when no recovery supervisor is attached.
  bool async_mode = false;
  bool detector_running = false;
  bool detector_failed_over = false;
  std::uint64_t detector_lag_events = 0;
  std::uint64_t detector_events_lost = 0;
  std::uint64_t cycles_recovered = 0;
  /// Recent recovery incidents, formatted one per entry ("victim 12 ...").
  std::vector<std::string> recovery_history;

  std::string to_string() const;
};

/// Watchdog knobs (embedded in runtime::Config).
struct WatchdogConfig {
  bool enabled = false;
  std::uint32_t poll_ms = 50;    ///< sampling cadence
  std::uint32_t stall_ms = 500;  ///< blocked longer than this ⇒ stalled
  /// Invoked (from the watchdog thread) for each newly stalled join batch.
  /// Default (nullptr): write report.to_string() to stderr.
  std::function<void(const StallReport&)> on_stall;
};

/// The sampler. Owned by the Runtime when cfg.watchdog.enabled.
class JoinWatchdog {
 public:
  /// `rec` (may be nullptr) lets stall reports quote the last recorded
  /// events of each stalled waiter/target, and mirrors every reported batch
  /// into the event stream (EventKind::WatchdogStall). `governor` (may be
  /// nullptr) lets reports name the current degradation level and the
  /// transition history that led to it. `recovery` (may be nullptr) lets
  /// async-mode reports name the detector's health — lag, failover state,
  /// recovery history — so a stall under optimistic verification is
  /// attributable to a lagging/abandoned detector at a glance.
  JoinWatchdog(WatchdogConfig cfg, const core::JoinGate& gate,
               obs::FlightRecorder* rec = nullptr,
               const ResourceGovernor* governor = nullptr,
               const RecoverySupervisor* recovery = nullptr);
  ~JoinWatchdog();
  JoinWatchdog(const JoinWatchdog&) = delete;
  JoinWatchdog& operator=(const JoinWatchdog&) = delete;

  /// Records that `waiter` is about to block (join on a task, or await on a
  /// promise when `on_promise`). `verdict` must be a string literal.
  void blocked(std::uint64_t waiter, std::uint64_t target, bool on_promise,
               const char* verdict);

  /// Removes the record (the wait ended, however it ended).
  void unblocked(std::uint64_t waiter);

  /// Stall batches reported so far (each batch = one callback invocation).
  std::uint64_t stalls_reported() const;

  /// Total waits-for cycles found by on-demand stall scans across all
  /// reports — the `watchdog_cycles` signal the SLO evaluator gates on
  /// (nonzero means a genuine deadlock slipped past the policy's model).
  std::uint64_t cycles_found() const {
    return cycles_found_.load(std::memory_order_relaxed);
  }

  /// Moment-in-time view of the currently-blocked admitted waits (for
  /// introspection snapshots; the stall path has its own reporting).
  struct BlockedWait {
    std::uint64_t waiter = 0;
    std::uint64_t target = 0;
    bool on_promise = false;
    const char* verdict = "";
    std::chrono::milliseconds blocked_for{0};
  };
  std::vector<BlockedWait> blocked_now() const;

  const WatchdogConfig& config() const { return cfg_; }

 private:
  struct Entry {
    std::uint64_t target;
    bool on_promise;
    const char* verdict;
    std::chrono::steady_clock::time_point since;
    bool reported = false;  // each stalled join is reported once
  };

  void poll_loop();

  const WatchdogConfig cfg_;
  const core::JoinGate& gate_;
  obs::FlightRecorder* const rec_;  // not owned; nullptr ⇒ recording off
  const ResourceGovernor* const governor_;  // not owned; may be nullptr
  const RecoverySupervisor* const recovery_;  // not owned; may be nullptr

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Entry> blocked_;  // guarded by mu_
  bool stop_ = false;                                 // guarded by mu_
  std::uint64_t stalls_reported_ = 0;                 // guarded by mu_
  std::atomic<std::uint64_t> cycles_found_{0};
  std::thread thread_;
};

/// RAII bracket for a blocking wait; tolerates a null watchdog (disabled).
class WatchdogBlockGuard {
 public:
  WatchdogBlockGuard(JoinWatchdog* wd, std::uint64_t waiter,
                     std::uint64_t target, bool on_promise,
                     const char* verdict)
      : wd_(wd), waiter_(waiter) {
    if (wd_ != nullptr) wd_->blocked(waiter, target, on_promise, verdict);
  }
  ~WatchdogBlockGuard() {
    if (wd_ != nullptr) wd_->unblocked(waiter_);
  }
  WatchdogBlockGuard(const WatchdogBlockGuard&) = delete;
  WatchdogBlockGuard& operator=(const WatchdogBlockGuard&) = delete;

 private:
  JoinWatchdog* wd_;
  std::uint64_t waiter_;
};

}  // namespace tj::runtime
