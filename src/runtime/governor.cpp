#include "runtime/governor.hpp"

#include <sstream>
#include <utility>

#include "kj/kj_vc.hpp"

namespace tj::runtime {

std::string ResourceGovernor::Transition::to_string() const {
  std::ostringstream os;
  os << core::to_string(from);
  if (to_level != from_level) os << "->" << core::to_string(to);
  os << '@' << t_ns / 1000000 << "ms(" << reason << ')';
  return os.str();
}

ResourceGovernor::ResourceGovernor(GovernorConfig cfg,
                                   core::LadderVerifier* ladder,
                                   const wfg::WaitsForGraph* wfg,
                                   std::function<std::size_t()> live_tasks,
                                   obs::FlightRecorder* rec)
    : cfg_(cfg),
      ladder_(ladder),
      wfg_(wfg),
      live_tasks_(std::move(live_tasks)),
      rec_(rec),
      epoch_(std::chrono::steady_clock::now()) {
  thread_ = std::thread([this] { poll_loop(); });
}

ResourceGovernor::~ResourceGovernor() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

core::PolicyChoice ResourceGovernor::active_policy() const {
  return ladder_ != nullptr ? ladder_->kind() : core::PolicyChoice::None;
}

ResourceGovernor::Snapshot ResourceGovernor::snapshot() const {
  Snapshot s;
  if (ladder_ != nullptr) {
    s.verifier_bytes = ladder_->state_bytes();
    s.verifier_nodes = ladder_->state_nodes();
  }
  if (wfg_ != nullptr) s.wfg_edges = wfg_->edge_count();
  if (live_tasks_) s.live_tasks = live_tasks_();
  if (rec_ != nullptr) {
    s.policy_check_p99_ns = rec_->metrics().policy_check_ns.summary().p99_ns;
  }
  return s;
}

void ResourceGovernor::poll_loop() {
  std::unique_lock lock(mu_);
  const auto poll = std::chrono::milliseconds(cfg_.poll_ms);
  while (!stop_) {
    cv_.wait_for(lock, poll, [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    poll_now();
    lock.lock();
  }
}

void ResourceGovernor::poll_now() {
  polls_.fetch_add(1, std::memory_order_relaxed);
  const Snapshot s = snapshot();

  // Mirror the KJ-VC compaction count into the metrics registry (the
  // verifier itself has no obs dependency).
  if (rec_ != nullptr && ladder_ != nullptr) {
    for (std::size_t i = 0; i < ladder_->level_count(); ++i) {
      if (auto* vc =
              dynamic_cast<kj::KjVcVerifier*>(ladder_->level_verifier(i))) {
        const std::uint64_t seen = vc->compactions();
        if (seen > kj_compactions_seen_) {
          rec_->metrics().kj_compactions.fetch_add(
              seen - kj_compactions_seen_, std::memory_order_relaxed);
          kj_compactions_seen_ = seen;
        }
      }
    }
  }

  std::string reason;
  auto over = [&reason](const char* what, auto value, auto budget) {
    if (budget == 0 || value <= static_cast<decltype(value)>(budget)) {
      return false;
    }
    if (!reason.empty()) reason += ',';
    reason += what;
    return true;
  };
  bool tripped = false;
  tripped |= over("bytes", s.verifier_bytes, cfg_.max_verifier_bytes);
  tripped |= over("nodes", s.verifier_nodes, cfg_.max_verifier_nodes);
  tripped |= over("wfg-edges", s.wfg_edges, cfg_.max_wfg_edges);
  tripped |= over("p99", s.policy_check_p99_ns, cfg_.max_policy_check_p99_ns);
  pressure_.store(tripped, std::memory_order_relaxed);

  if (cooldown_left_ > 0) {
    --cooldown_left_;
    return;
  }
  if (!tripped) {
    consecutive_ = 0;  // hysteresis: only an unbroken run of trips acts
    return;
  }
  if (++consecutive_ < cfg_.trip_polls) return;
  consecutive_ = 0;
  cooldown_left_ = cfg_.cooldown_polls;
  act(reason);
}

void ResourceGovernor::act(const std::string& reason) {
  if (ladder_ == nullptr) return;  // nothing to degrade
  const std::size_t from_level = ladder_->level();
  const core::PolicyChoice from = ladder_->level_kind(from_level);

  // Escalation step 1: a KJ-VC level under pressure first gets its epoch GC
  // turned on — reclaiming retired clock components may relieve the budget
  // without giving up precision.
  if (auto* vc = dynamic_cast<kj::KjVcVerifier*>(
          ladder_->level_verifier(from_level))) {
    if (!vc->gc_enabled()) {
      vc->set_gc(true);
      Transition t;
      t.from_level = t.to_level = from_level;
      t.from = t.to = from;
      t.reason = "kj-gc:" + reason;
      record_transition(std::move(t), obs::EventKind::KjGcEnabled);
      return;
    }
  }

  // Escalation step 2: shed precision.
  if (!ladder_->downgrade()) return;  // already on the WFG-only floor
  const std::size_t to_level = ladder_->level();
  Transition t;
  t.from_level = from_level;
  t.to_level = to_level;
  t.from = from;
  t.to = ladder_->level_kind(to_level);
  t.reason = reason;
  record_transition(std::move(t), obs::EventKind::PolicyDowngrade);
}

void ResourceGovernor::record_transition(Transition t, obs::EventKind kind) {
  t.t_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  if (rec_ != nullptr) {
    if (kind == obs::EventKind::PolicyDowngrade) {
      rec_->metrics().policy_downgrades.fetch_add(1,
                                                  std::memory_order_relaxed);
    }
    obs::Event e;
    e.kind = kind;
    e.payload = t.to_level;
    e.policy = static_cast<std::uint8_t>(t.to);
    e.detail = static_cast<std::uint8_t>(t.from);
    rec_->emit(e);
  }
  std::scoped_lock lock(mu_);
  transitions_.push_back(std::move(t));
}

std::vector<ResourceGovernor::Transition> ResourceGovernor::transitions()
    const {
  std::scoped_lock lock(mu_);
  return transitions_;
}

std::string ResourceGovernor::history_string() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const Transition& t : transitions_) {
    if (!out.empty()) out += "; ";
    out += t.to_string();
  }
  return out;
}

}  // namespace tj::runtime
