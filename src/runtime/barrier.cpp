#include "runtime/barrier.hpp"

#include <algorithm>

#include "runtime/runtime.hpp"

namespace tj::runtime {

namespace {
// RAII compensation bracket around a non-join blocking wait.
class BlockingRegion {
 public:
  explicit BlockingRegion(Scheduler& s) : sched_(s) {
    sched_.enter_blocking_region();
  }
  ~BlockingRegion() { sched_.exit_blocking_region(); }
  BlockingRegion(const BlockingRegion&) = delete;
  BlockingRegion& operator=(const BlockingRegion&) = delete;

 private:
  Scheduler& sched_;
};

void erase_value(std::vector<wfg::TaskUid>& xs, wfg::TaskUid v) {
  xs.erase(std::remove(xs.begin(), xs.end(), v), xs.end());
}
}  // namespace

CheckedBarrier& BarrierDomain::create_barrier() {
  std::scoped_lock lock(barriers_mu_);
  barriers_.push_back(std::unique_ptr<CheckedBarrier>(
      new CheckedBarrier(this, next_id_.fetch_add(1))));
  return *barriers_.back();
}

void CheckedBarrier::register_party() {
  register_party(current_task().uid());
}

void CheckedBarrier::register_party(wfg::TaskUid uid) {
  std::scoped_lock lock(mu_);
  ++parties_;
  // The party gates every phase until it arrives: it provides the resource.
  domain_->graph_.add_provider(id_, uid);
}

void CheckedBarrier::deregister() {
  const wfg::TaskUid uid = current_task().uid();
  std::scoped_lock lock(mu_);
  if (parties_ == 0) {
    throw UsageError("CheckedBarrier: deregister without registration");
  }
  --parties_;
  domain_->graph_.remove_provider(id_, uid);
  // Revoke a pending arrival in the current phase (arrive() then leave).
  const auto it =
      std::find(arrived_uids_.begin(), arrived_uids_.end(), uid);
  if (it != arrived_uids_.end()) {
    arrived_uids_.erase(it);
  }
  if (arrived_uids_.size() == parties_ && parties_ > 0) {
    release_phase_locked();
  }
}

void CheckedBarrier::release_phase_locked() {
  // Every arrived party provides the next phase again; blocked parties'
  // wait entries are cleared HERE — leaving them until the waiters wake
  // would let stale edges poison other tasks' cycle checks.
  for (wfg::TaskUid uid : arrived_uids_) {
    domain_->graph_.add_provider(id_, uid);
  }
  for (wfg::TaskUid uid : blocked_uids_) {
    domain_->graph_.clear_wait(uid);
  }
  arrived_uids_.clear();
  blocked_uids_.clear();
  ++phase_;
  cv_.notify_all();
}

bool CheckedBarrier::arrive_locked(wfg::TaskUid uid) {
  domain_->graph_.remove_provider(id_, uid);
  arrived_uids_.push_back(uid);
  if (arrived_uids_.size() == parties_) {
    release_phase_locked();
    return true;
  }
  return false;
}

void CheckedBarrier::arrive() {
  const wfg::TaskUid uid = current_task().uid();
  std::scoped_lock lock(mu_);
  (void)arrive_locked(uid);
}

bool CheckedBarrier::await() {
  TaskBase& cur = current_task();
  const wfg::TaskUid uid = cur.uid();
  std::unique_lock lock(mu_);
  if (arrive_locked(uid)) {
    return true;  // this arrival completed the phase: the serial party
  }
  // Blocking: verify against the shared resource graph first.
  if (!domain_->graph_.try_wait(uid, {id_})) {
    // Roll the arrival back: this await faults without blocking.
    erase_value(arrived_uids_, uid);
    domain_->graph_.add_provider(id_, uid);
    domain_->averted_.fetch_add(1, std::memory_order_relaxed);
    throw DeadlockAvoidedError(
        "barrier await aborted: blocking would create a deadlock cycle "
        "across barriers");
  }
  blocked_uids_.push_back(uid);
  const std::uint64_t my_phase = phase_;
  {
    BlockingRegion region(cur.runtime()->scheduler());
    cv_.wait(lock, [this, my_phase] { return phase_ != my_phase; });
  }
  return false;
}

std::size_t CheckedBarrier::parties() const {
  std::scoped_lock lock(mu_);
  return parties_;
}

std::uint64_t CheckedBarrier::phase() const {
  std::scoped_lock lock(mu_);
  return phase_;
}

}  // namespace tj::runtime
