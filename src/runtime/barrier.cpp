#include "runtime/barrier.hpp"

#include <algorithm>
#include <utility>

#include "runtime/cancellation.hpp"
#include "runtime/runtime.hpp"

namespace tj::runtime {

namespace {
// RAII compensation bracket around a non-join blocking wait.
class BlockingRegion {
 public:
  explicit BlockingRegion(Scheduler& s) : sched_(s) {
    sched_.enter_blocking_region();
  }
  ~BlockingRegion() { sched_.exit_blocking_region(); }
  BlockingRegion(const BlockingRegion&) = delete;
  BlockingRegion& operator=(const BlockingRegion&) = delete;

 private:
  Scheduler& sched_;
};

void erase_value(std::vector<wfg::TaskUid>& xs, wfg::TaskUid v) {
  xs.erase(std::remove(xs.begin(), xs.end(), v), xs.end());
}
}  // namespace

CheckedBarrier& BarrierDomain::create_barrier() {
  std::scoped_lock lock(barriers_mu_);
  barriers_.push_back(std::shared_ptr<CheckedBarrier>(
      new CheckedBarrier(this, next_id_.fetch_add(1))));
  return *barriers_.back();
}

void CheckedBarrier::register_party() {
  register_party(current_task().uid());
}

void CheckedBarrier::register_party(wfg::TaskUid uid) {
  {
    std::scoped_lock lock(mu_);
    if (poisoned_) {
      throw CancelledError("barrier register aborted: barrier poisoned",
                           poison_cause_);
    }
    ++parties_;
    // The party gates every phase until it arrives: it provides the resource.
    domain_->graph_.add_provider(id_, uid);
  }
  // Attach the barrier to the registering task's cancellation scope: if the
  // scope cancels, the barrier is poisoned so no surviving party is stranded
  // waiting for a cancelled one.
  if (const TaskBase* cur = current_task_or_null(); cur != nullptr) {
    if (const auto& scope = cur->cancel_scope(); scope != nullptr) {
      scope->track_barrier(weak_from_this());
    }
  }
}

void CheckedBarrier::deregister() {
  const wfg::TaskUid uid = current_task().uid();
  std::scoped_lock lock(mu_);
  if (parties_ == 0) {
    throw UsageError("CheckedBarrier: deregister without registration");
  }
  --parties_;
  domain_->graph_.remove_provider(id_, uid);
  // Revoke a pending arrival in the current phase (arrive() then leave).
  const auto it =
      std::find(arrived_uids_.begin(), arrived_uids_.end(), uid);
  if (it != arrived_uids_.end()) {
    arrived_uids_.erase(it);
  }
  if (arrived_uids_.size() == parties_ && parties_ > 0) {
    release_phase_locked();
  }
}

void CheckedBarrier::release_phase_locked() {
  // Every arrived party provides the next phase again; blocked parties'
  // wait entries are cleared HERE — leaving them until the waiters wake
  // would let stale edges poison other tasks' cycle checks.
  for (wfg::TaskUid uid : arrived_uids_) {
    domain_->graph_.add_provider(id_, uid);
  }
  for (wfg::TaskUid uid : blocked_uids_) {
    domain_->graph_.clear_wait(uid);
  }
  arrived_uids_.clear();
  blocked_uids_.clear();
  if (const TaskBase* cur = current_task_or_null(); cur != nullptr &&
      cur->runtime() != nullptr && cur->runtime()->recorder() != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::BarrierPhase;
    e.actor = cur->uid();
    e.target = id_;
    e.payload = phase_;  // the phase this release just completed
    cur->runtime()->recorder()->emit(e);
  }
  ++phase_;
  cv_.notify_all();
}

bool CheckedBarrier::arrive_locked(wfg::TaskUid uid) {
  domain_->graph_.remove_provider(id_, uid);
  arrived_uids_.push_back(uid);
  if (arrived_uids_.size() == parties_) {
    release_phase_locked();
    return true;
  }
  return false;
}

void CheckedBarrier::arrive() {
  const wfg::TaskUid uid = current_task().uid();
  std::scoped_lock lock(mu_);
  if (poisoned_) {
    throw CancelledError("barrier arrive aborted: barrier poisoned",
                         poison_cause_);
  }
  (void)arrive_locked(uid);
}

bool CheckedBarrier::await() {
  TaskBase& cur = current_task();
  const wfg::TaskUid uid = cur.uid();
  if (cur.cancel_requested()) {
    throw CancelledError(
        "barrier await abandoned: the awaiting task was cancelled",
        cur.cancel_scope() ? cur.cancel_scope()->cause() : nullptr);
  }
  std::unique_lock lock(mu_);
  if (poisoned_) {
    throw CancelledError("barrier await aborted: barrier poisoned",
                         poison_cause_);
  }
  if (arrive_locked(uid)) {
    return true;  // this arrival completed the phase: the serial party
  }
  // Blocking: verify against the shared resource graph first.
  if (!domain_->graph_.try_wait(uid, {id_})) {
    // Faulting out: DROP the party rather than re-arming it as a provider.
    // The faulted task cannot be relied on to come back (it is unwinding);
    // re-arming it would leave its peers waiting on an arrival that may
    // never happen. Dropping it lets the phase complete with the survivors
    // — the party must re-register to take part again.
    erase_value(arrived_uids_, uid);
    --parties_;
    domain_->averted_.fetch_add(1, std::memory_order_relaxed);
    if (arrived_uids_.size() == parties_ && parties_ > 0) {
      release_phase_locked();
    }
    throw DeadlockAvoidedError(
        "barrier await aborted: blocking would create a deadlock cycle "
        "across barriers (party dropped)");
  }
  blocked_uids_.push_back(uid);
  const std::uint64_t my_phase = phase_;
  {
    BlockingRegion region(cur.runtime()->scheduler());
    cv_.wait(lock,
             [this, my_phase] { return phase_ != my_phase || poisoned_; });
  }
  if (poisoned_ && phase_ == my_phase) {
    throw CancelledError("barrier await aborted: barrier poisoned",
                         poison_cause_);
  }
  return false;
}

void CheckedBarrier::poison(std::exception_ptr cause) {
  std::scoped_lock lock(mu_);
  if (poisoned_) return;
  poisoned_ = true;
  poison_cause_ = std::move(cause);
  // Wake every blocked waiter and clear their wait entries so the stale
  // edges cannot poison other tasks' cycle checks.
  for (wfg::TaskUid uid : blocked_uids_) {
    domain_->graph_.clear_wait(uid);
  }
  blocked_uids_.clear();
  cv_.notify_all();
}

bool CheckedBarrier::poisoned() const {
  std::scoped_lock lock(mu_);
  return poisoned_;
}

std::size_t CheckedBarrier::parties() const {
  std::scoped_lock lock(mu_);
  return parties_;
}

std::uint64_t CheckedBarrier::phase() const {
  std::scoped_lock lock(mu_);
  return phase_;
}

}  // namespace tj::runtime
