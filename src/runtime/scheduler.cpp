#include "runtime/scheduler.hpp"

#include "runtime/errors.hpp"
#include "runtime/fault_injection.hpp"

namespace tj::runtime {

namespace {
thread_local TaskBase* t_current = nullptr;
thread_local bool t_is_worker = false;
}  // namespace

TaskBase* current_task_or_null() { return t_current; }

TaskBase& current_task() {
  if (t_current == nullptr) {
    throw UsageError(
        "operation requires a task context (use Runtime::root or call from "
        "within a task)");
  }
  return *t_current;
}

namespace detail {
CurrentTaskGuard::CurrentTaskGuard(TaskBase* t)
    : prev_(t_current), prev_ctx_(obs::tls_request_context()) {
  t_current = t;
  obs::tls_request_context() =
      t != nullptr ? t->request_context() : obs::RequestContext{};
}
CurrentTaskGuard::~CurrentTaskGuard() {
  t_current = prev_;
  obs::tls_request_context() = prev_ctx_;
}
}  // namespace detail

Scheduler::Scheduler(SchedulerMode mode, unsigned workers,
                     unsigned max_threads, FaultInjector* injector,
                     obs::FlightRecorder* rec)
    : mode_(mode),
      target_parallelism_(workers),
      max_threads_(std::max(max_threads, workers)),
      injector_(injector),
      rec_(rec) {
  std::scoped_lock lock(mu_);
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) add_worker_locked();
}

Scheduler::~Scheduler() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Compensation workers are only added while tasks run; by the time the
  // scheduler is destroyed the runtime has quiesced, so the thread list is
  // stable once stop_ is visible.
  std::vector<std::thread> threads;
  {
    std::scoped_lock lock(mu_);
    threads.swap(threads_);
  }
  for (std::thread& t : threads) t.join();
}

void Scheduler::add_worker_locked() {
  threads_.emplace_back([this] { worker_loop(); });
}

void Scheduler::record_compensation_locked() {
  if (rec_ == nullptr) return;
  rec_->metrics().compensation_spawns.fetch_add(1, std::memory_order_relaxed);
  obs::Event e;
  e.kind = obs::EventKind::SchedCompensate;
  const TaskBase* cur = current_task_or_null();
  e.actor = cur != nullptr ? cur->uid() : 0;
  e.payload = live_workers_locked();
  rec_->emit(e);
}

unsigned Scheduler::thread_count() const {
  std::scoped_lock lock(mu_);
  return static_cast<unsigned>(threads_.size());
}

std::uint64_t Scheduler::tasks_executed() const {
  return executed_.load(std::memory_order_relaxed);
}

std::uint64_t Scheduler::tasks_inlined() const {
  return inlined_.load(std::memory_order_relaxed);
}

void Scheduler::submit(std::shared_ptr<TaskBase> task) {
  live_tasks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void Scheduler::worker_loop() {
  t_is_worker = true;
  // Publish this worker's state word for the timeline profile. The TLS
  // slot also lets profiled locks report BlockedLock while this thread
  // waits on a contended runtime mutex.
  obs::WorkerSlot* slot = worker_states_.register_worker();
  obs::tls_worker_slot() = slot;
  std::unique_lock lock(mu_);
  while (true) {
    slot->set_state(obs::WorkerState::Idle);
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (stop_) {
      slot->set_state(obs::WorkerState::Idle);
      return;
    }
    slot->set_state(obs::WorkerState::Stealing);
    std::shared_ptr<TaskBase> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    if (task->try_claim()) {
      run_claimed(*task);
    }
    // else: a cooperative joiner inlined it; nothing to do.
    task.reset();
    lock.lock();
    if (injector_ != nullptr && !stop_ && injector_->should_kill_worker()) {
      // Injected worker death — always at a task boundary, never mid-task.
      // Spawn the replacement before exiting (crash + supervisor restart),
      // so pool parallelism and liveness are preserved. Our std::thread
      // object stays in threads_ until shutdown; dead_workers_ keeps the
      // live count honest for compensation decisions.
      ++dead_workers_;
      add_worker_locked();
      if (rec_ != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::WorkerDeath;
        e.payload = live_workers_locked();
        rec_->emit(e);
      }
      slot->set_state(obs::WorkerState::Idle);
      return;
    }
  }
}

void Scheduler::run_claimed(TaskBase& task) {
  {
    // Scoped so nesting composes: a cooperative joiner inlining a target
    // stays Running, and the restore puts back whatever state the joiner
    // was in (BlockedJoin when helping from inside a wait loop).
    obs::ScopedWorkerState running(obs::tls_worker_slot(),
                                   obs::WorkerState::Running);
    detail::CurrentTaskGuard guard(&task);
    task.run();
  }
  executed_.fetch_add(1, std::memory_order_relaxed);
  note_task_done();
}

void Scheduler::note_task_done() {
  if (live_tasks_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::scoped_lock lock(quiesce_mu_);
    quiesce_cv_.notify_all();
  }
}

void Scheduler::join_wait(TaskBase& target) {
  if (mode_ == SchedulerMode::Cooperative) {
    if (!target.done() && target.try_claim()) {
      inlined_.fetch_add(1, std::memory_order_relaxed);
      if (rec_ != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::SchedInline;
        const TaskBase* cur = current_task_or_null();
        e.actor = cur != nullptr ? cur->uid() : 0;
        e.target = target.uid();
        rec_->emit(e);
      }
      run_claimed(target);
      return;
    }
    // try_claim can only fail when the target is Running or Done; Done wakes
    // us via notify_all, Running will reach Done on its own thread.
    // Interruptible: in async (optimistic) mode the recovery supervisor may
    // break this wait — the throw propagates to the gate's leave_join.
    obs::ScopedWorkerState blocked(obs::tls_worker_slot(),
                                   obs::WorkerState::BlockedJoin);
    target.wait_done_interruptible(current_task_or_null());
    return;
  }

  // Blocking mode: never help; preserve parallelism with compensation
  // workers while this worker blocks.
  if (t_is_worker) {
    {
      std::scoped_lock lock(mu_);
      ++blocked_workers_;
      if (!stop_ &&
          live_workers_locked() - blocked_workers_ < target_parallelism_ &&
          live_workers_locked() < max_threads_) {
        add_worker_locked();
        record_compensation_locked();
      }
    }
    try {
      obs::ScopedWorkerState blocked(obs::tls_worker_slot(),
                                     obs::WorkerState::BlockedJoin);
      target.wait_done_interruptible(current_task_or_null());
    } catch (...) {
      std::scoped_lock lock(mu_);
      --blocked_workers_;
      throw;
    }
    std::scoped_lock lock(mu_);
    --blocked_workers_;
  } else {
    target.wait_done_interruptible(current_task_or_null());
  }
}

bool Scheduler::join_wait_for(TaskBase& target,
                              std::chrono::nanoseconds timeout) {
  if (mode_ == SchedulerMode::Cooperative) {
    if (!target.done() && target.try_claim()) {
      // Inline help ignores the deadline on purpose: the joiner is executing
      // the very work it wants, so there is nothing to time out on.
      inlined_.fetch_add(1, std::memory_order_relaxed);
      if (rec_ != nullptr) {
        obs::Event e;
        e.kind = obs::EventKind::SchedInline;
        const TaskBase* cur = current_task_or_null();
        e.actor = cur != nullptr ? cur->uid() : 0;
        e.target = target.uid();
        rec_->emit(e);
      }
      run_claimed(target);
      return true;
    }
    obs::ScopedWorkerState blocked(obs::tls_worker_slot(),
                                   obs::WorkerState::BlockedJoin);
    return target.wait_done_for_interruptible(timeout, current_task_or_null());
  }

  // Blocking mode: same compensation bracket as join_wait, bounded wait.
  if (t_is_worker) {
    {
      std::scoped_lock lock(mu_);
      ++blocked_workers_;
      if (!stop_ &&
          live_workers_locked() - blocked_workers_ < target_parallelism_ &&
          live_workers_locked() < max_threads_) {
        add_worker_locked();
        record_compensation_locked();
      }
    }
    bool done = false;
    try {
      obs::ScopedWorkerState blocked(obs::tls_worker_slot(),
                                     obs::WorkerState::BlockedJoin);
      done =
          target.wait_done_for_interruptible(timeout, current_task_or_null());
    } catch (...) {
      std::scoped_lock lock(mu_);
      --blocked_workers_;
      throw;
    }
    std::scoped_lock lock(mu_);
    --blocked_workers_;
    return done;
  }
  return target.wait_done_for_interruptible(timeout, current_task_or_null());
}

void Scheduler::enter_blocking_region() {
  if (!t_is_worker) return;
  if (obs::WorkerSlot* slot = obs::tls_worker_slot()) {
    slot->set_state(obs::WorkerState::BlockedJoin);
  }
  std::scoped_lock lock(mu_);
  ++blocked_workers_;
  if (!stop_ &&
      live_workers_locked() - blocked_workers_ < target_parallelism_ &&
      live_workers_locked() < max_threads_) {
    add_worker_locked();
    record_compensation_locked();
  }
}

void Scheduler::exit_blocking_region() {
  if (!t_is_worker) return;
  {
    std::scoped_lock lock(mu_);
    --blocked_workers_;
  }
  if (obs::WorkerSlot* slot = obs::tls_worker_slot()) {
    // A blocking region only brackets waits performed from inside a task
    // body on a worker thread, so the state to restore is Running.
    slot->set_state(obs::WorkerState::Running);
  }
}

void Scheduler::quiesce() {
  std::unique_lock lock(quiesce_mu_);
  quiesce_cv_.wait(lock, [this] {
    return live_tasks_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace tj::runtime
