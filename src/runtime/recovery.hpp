#pragma once
// Recovery supervisor: the runtime half of the optimistic (async-detection)
// mode. The core::AsyncDetector it owns finds and confirms deadlock cycles
// against the gate's live WFG; everything that requires runtime knowledge
// happens here — mapping confirmed cycle nodes back to blocked TaskBase
// waiters, choosing a victim (tenant-priority-aware, then youngest), breaking
// the victim's wait so DeadlockAvoidedError surfaces exactly where a
// synchronous policy would have thrown it (the request's retry loop then
// handles it — the PR-2 Backoff contract), and stepping the degradation
// ladder down to a synchronous level when the detector's latency budget is
// exhausted.
//
// The registry: every gate-approved blocking join/await in async mode
// brackets its wait with a RecoveryWaitGuard, which registers the waiter
// here. Registration is what makes a waiter *breakable* — the supervisor
// only ever posts wait-breaks to currently registered entries, under the
// registry mutex, so a break can never land on a task that already moved on
// (stale breaks are cleared at unregister, under the same mutex, making the
// post/clear pairing airtight).
//
// Victim selection is deterministic: among the confirmed cycle's registered
// members, restrict to each thread's *leaf* wait (the youngest entry per
// OS thread — under cooperative inlining one thread can hold several nested
// frames' waits, and only the leaf is actually parked; the functional-graph
// chain guarantees the leaf of any thread whose frame is a cycle member is
// itself a cycle member), then pick the lowest tenant recovery priority,
// breaking ties by the youngest task uid. Fixed seed ⇒ fixed victim.
//
// Accounting contract (tests assert it exactly): each confirmed cycle
// *incarnation* — identified by the exact set of (waiter uid, registry entry
// id) pairs, so the same tasks re-deadlocking after a retry is a new
// incident — is counted once into GateStats::cycles_recovered, keeping the
// async ledger  deadlock_incidents == deadlocks_averted + cycles_recovered.
// The detector re-reports a still-unbroken cycle on every scan; re-reports
// re-post + re-nudge (closing the check-then-park race) but never re-count.

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/async_detect.hpp"
#include "core/guarded.hpp"
#include "core/ladder.hpp"
#include "obs/contention.hpp"

namespace tj::runtime {

class TaskBase;
namespace detail {
class PromiseStateBase;
}

/// Point-in-time recovery health for watchdog stall reports, introspection
/// snapshots, and telemetry.
struct RecoveryStatus {
  core::DetectorStatus detector;
  std::uint64_t cycles_recovered = 0;  ///< distinct incarnations broken
  std::uint64_t breaks_posted = 0;     ///< wait-breaks installed (≥ above)
  std::size_t waits_registered = 0;    ///< breakable waits right now

  /// One recovered incident, newest last (bounded history).
  struct Incident {
    std::uint64_t victim = 0;     ///< task uid whose wait was broken
    std::uint64_t waited_on = 0;  ///< uid of the node the victim waited on
    bool on_promise = false;      ///< waited_on names a promise
    std::uint32_t cycle_len = 0;
    std::uint8_t tenant = 0;      ///< victim's tenant lane (index + 1; 0 none)
    std::uint64_t t_ns = 0;       ///< recorder timestamp of the break
  };
  std::vector<Incident> recent;
};

/// Owns the AsyncDetector and implements its sink. Constructed by the
/// Runtime only under PolicyChoice::Async (where the recorder is forced on).
class RecoverySupervisor final : public core::DetectorSink {
 public:
  /// `ladder` is the gate's degradation ladder (failover steps it down);
  /// `faults` may be nullptr. `tenant_priorities[i]` is tenant i's recovery
  /// priority (see TenantBudget::priority); unattributed waits rank lowest.
  RecoverySupervisor(const core::DetectorConfig& cfg, core::JoinGate& gate,
                     obs::FlightRecorder& rec, core::LadderVerifier* ladder,
                     core::DetectorFaultHooks* faults,
                     std::vector<std::uint32_t> tenant_priorities);
  ~RecoverySupervisor() override;
  RecoverySupervisor(const RecoverySupervisor&) = delete;
  RecoverySupervisor& operator=(const RecoverySupervisor&) = delete;

  void start() { detector_.start(); }
  /// Stops the detector (final drain included). Any still-broken waiters
  /// have already consumed their breaks or will at the next check.
  void stop() { detector_.stop(); }

  /// Registers a gate-approved blocking wait as breakable. Exactly one of
  /// `target_task` / `promise` is non-null (what the waiter parks on — the
  /// supervisor nudges it after posting a break). Returns the entry id the
  /// matching unregister_wait must pass back.
  std::uint64_t register_wait(TaskBase* waiter, TaskBase* target_task,
                              detail::PromiseStateBase* promise,
                              std::uint8_t tenant);

  /// Removes a breakable wait (however the wait ended) and clears any
  /// pending break so it cannot leak into the waiter's next wait. When the
  /// entry was broken, records the recovery latency (cycle formation → now)
  /// into the metrics `recovery_ns` histogram — the recovery_p99_ms SLO.
  void unregister_wait(std::uint64_t waiter_uid, std::uint64_t entry_id);

  /// True iff the detector failed over to a synchronous ladder level.
  bool failed_over() const { return detector_.failed_over(); }

  RecoveryStatus status() const;

  // ---- core::DetectorSink (called from the detector thread) ----
  void recover_cycle(const std::vector<wfg::NodeId>& cycle) override;
  void on_failover(obs::DetectorFailoverReason reason,
                   std::uint64_t backlog) override;

 private:
  struct WaitRecord {
    std::uint64_t uid = 0;  // waiter task uid (the registry key, repeated)
    TaskBase* waiter = nullptr;
    TaskBase* target_task = nullptr;            // null for awaits
    detail::PromiseStateBase* promise = nullptr;  // null for joins
    std::uint8_t tenant = 0;
    std::thread::id tid;        // OS thread parked (leaf-wait selection)
    std::uint64_t entry_id = 0;  // monotonic, never reused
    std::uint64_t since_ns = 0;  // recorder clock at registration
    bool broken = false;         // a break was posted at this entry
    std::uint64_t formation_ns = 0;  // cycle formation time when broken
  };

  /// A cycle incarnation: the sorted (uid, entry_id) pairs of its registered
  /// members. Same tasks, new waits ⇒ new key ⇒ new incident.
  using IncarnationKey = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

  std::uint32_t priority_of(std::uint8_t tenant) const {
    if (tenant == 0 || tenant > tenant_priorities_.size()) return 0;
    return tenant_priorities_[tenant - 1];
  }

  core::JoinGate& gate_;
  obs::FlightRecorder& rec_;
  core::LadderVerifier* const ladder_;  // not owned; may be nullptr (tests)
  const std::vector<std::uint32_t> tenant_priorities_;

  // Profiled ("recovery.registry"): every async-mode blocking wait
  // registers/unregisters here while the detector posts breaks.
  mutable obs::ProfiledMutex mu_{"recovery.registry"};
  std::unordered_map<std::uint64_t, WaitRecord> waits_;  // by waiter uid
  std::uint64_t next_entry_id_ = 1;                      // guarded by mu_
  std::set<IncarnationKey> counted_;                     // guarded by mu_
  std::vector<RecoveryStatus::Incident> recent_;  // ring, newest last
  std::atomic<std::uint64_t> cycles_recovered_{0};
  std::atomic<std::uint64_t> breaks_posted_{0};

  core::AsyncDetector detector_;  // last: its thread may call back into us
};

/// RAII bracket for a breakable wait; tolerates a null supervisor (any
/// non-async mode) and a null waiter (external threads cannot be victims).
class RecoveryWaitGuard {
 public:
  RecoveryWaitGuard(RecoverySupervisor* sup, TaskBase* waiter,
                    TaskBase* target_task, detail::PromiseStateBase* promise,
                    std::uint8_t tenant);
  ~RecoveryWaitGuard();
  RecoveryWaitGuard(const RecoveryWaitGuard&) = delete;
  RecoveryWaitGuard& operator=(const RecoveryWaitGuard&) = delete;

 private:
  RecoverySupervisor* sup_;
  std::uint64_t waiter_uid_ = 0;
  std::uint64_t entry_id_ = 0;
};

}  // namespace tj::runtime
