#pragma once
// Future: a copyable handle to an asynchronously executing task (the paper's
// program model, Sec. 2.2). get() performs a *join*: it is verified by the
// runtime's active policy and may fault with DeadlockAvoidedError /
// PolicyViolationError instead of blocking.

#include <memory>
#include <utility>

#include "runtime/errors.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return task_ != nullptr; }

  /// True iff the task already terminated (never blocks).
  bool ready() const {
    require_valid();
    return task_->done();
  }

  /// Joins on the task: verified by the active policy, blocks until the task
  /// terminates, then returns its result (copy; a Future may be joined by
  /// several tasks). Rethrows the task's exception if it failed.
  T get() const {
    require_valid();
    detail::join_current_on(*task_);
    task_->rethrow_if_error();
    if constexpr (!std::is_void_v<T>) {
      return task_->result();
    }
  }

  /// Alias for get() discarding the value — the paper's join().
  void join() const { (void)get(); }

  /// The underlying task record (for diagnostics/tests).
  const TaskBase& task() const {
    require_valid();
    return *task_;
  }

 private:
  friend class Runtime;

  explicit Future(std::shared_ptr<Task<T>> t) : task_(std::move(t)) {}

  void require_valid() const {
    if (task_ == nullptr) {
      throw UsageError("Future: empty handle");
    }
  }

  std::shared_ptr<Task<T>> task_;
};

}  // namespace tj::runtime
