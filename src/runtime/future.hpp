#pragma once
// Future: a copyable handle to an asynchronously executing task (the paper's
// program model, Sec. 2.2). get() performs a *join*: it is verified by the
// runtime's active policy and may fault with DeadlockAvoidedError /
// PolicyViolationError instead of blocking.

#include <chrono>
#include <memory>
#include <optional>
#include <utility>

#include "runtime/errors.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

/// Outcome of a deadline-aware join (join_for / get_for).
enum class JoinOutcome : std::uint8_t {
  Ready,    ///< the task terminated within the deadline; result available
  Timeout,  ///< deadline expired; the join was withdrawn and may be retried
};

template <typename T>
class Future {
 public:
  Future() = default;

  bool valid() const { return task_ != nullptr; }

  /// True iff the task already terminated (never blocks).
  bool ready() const {
    require_valid();
    return task_->done();
  }

  /// Joins on the task: verified by the active policy, blocks until the task
  /// terminates, then returns its result (copy; a Future may be joined by
  /// several tasks). Rethrows the task's exception if it failed.
  T get() const {
    require_valid();
    detail::join_current_on(*task_);
    task_->rethrow_if_error();
    if constexpr (!std::is_void_v<T>) {
      return task_->result();
    }
  }

  /// Alias for get() discarding the value — the paper's join().
  void join() const { (void)get(); }

  /// Deadline-aware join: verified by the active policy exactly like get(),
  /// but waits at most `timeout` (honoured to ~1ms granularity — see
  /// TaskBase::wait_done_for). On Timeout the wait edge is withdrawn and the
  /// task keeps running; the caller may retry (e.g. with runtime/backoff.hpp)
  /// or move on. Policy faults (DeadlockAvoidedError etc.) still throw.
  /// A cooperative joiner that inline-claims the task runs it to completion
  /// and returns Ready regardless of the deadline.
  template <typename Rep, typename Period>
  JoinOutcome join_for(std::chrono::duration<Rep, Period> timeout) const {
    require_valid();
    return detail::join_current_on_for(
               *task_,
               std::chrono::duration_cast<std::chrono::nanoseconds>(timeout))
               ? JoinOutcome::Ready
               : JoinOutcome::Timeout;
  }

  /// join_for + result retrieval: std::optional<T> (empty on timeout), or
  /// bool for Future<void> (false on timeout). Rethrows the task's exception
  /// when it completed with a fault.
  template <typename Rep, typename Period>
  auto get_for(std::chrono::duration<Rep, Period> timeout) const {
    require_valid();
    const bool ready = detail::join_current_on_for(
        *task_, std::chrono::duration_cast<std::chrono::nanoseconds>(timeout));
    if constexpr (std::is_void_v<T>) {
      if (!ready) return false;
      task_->rethrow_if_error();
      return true;
    } else {
      if (!ready) return std::optional<T>();
      task_->rethrow_if_error();
      return std::optional<T>(task_->result());
    }
  }

  /// The underlying task record (for diagnostics/tests).
  const TaskBase& task() const {
    require_valid();
    return *task_;
  }

 private:
  friend class Runtime;

  explicit Future(std::shared_ptr<Task<T>> t) : task_(std::move(t)) {}

  void require_valid() const {
    if (task_ == nullptr) {
      throw UsageError("Future: empty handle");
    }
  }

  std::shared_ptr<Task<T>> task_;
};

}  // namespace tj::runtime
