#pragma once
// std::async-flavoured adapter (Sec. 1 notes the Futures model maps directly
// onto C++'s standard futures): tj::compat::async(fn, args...) forks an
// instrumented task binding the arguments, so code written against the
// std::async idiom can adopt the verified runtime with a namespace swap.
// Differences from std::async, by design:
//   * must run within a Runtime task context (root() / another task);
//   * returns tj::runtime::Future (copyable, joinable repeatedly);
//   * get() may fault with DeadlockAvoidedError instead of deadlocking.

#include <functional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "runtime/api.hpp"

namespace tj::compat {

/// Forks `fn(args...)` as a child of the current task.
template <typename F, typename... Args>
auto async(F&& fn, Args&&... args) {
  if constexpr (sizeof...(Args) == 0) {
    return runtime::async(std::forward<F>(fn));
  } else {
    return runtime::async(
        [fn = std::forward<F>(fn),
         tup = std::make_tuple(std::forward<Args>(args)...)]() mutable {
          return std::apply(std::move(fn), std::move(tup));
        });
  }
}

/// std::packaged_task-ish helper: wraps a callable so each invocation forks
/// a verified task and returns its Future.
template <typename Sig>
class TaskLauncher;

template <typename R, typename... Args>
class TaskLauncher<R(Args...)> {
 public:
  template <typename F>
  explicit TaskLauncher(F&& fn) : fn_(std::forward<F>(fn)) {}

  runtime::Future<R> operator()(Args... args) {
    return compat::async(fn_, std::move(args)...);
  }

 private:
  std::function<R(Args...)> fn_;
};

}  // namespace tj::compat
