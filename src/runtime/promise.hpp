#pragma once
// Promise<T>: a single-assignment cell that is *fulfillable by any task*
// holding the handle and readable by many — the promises of the follow-up
// paper (Voss & Sarkar, arXiv:2101.01312), as opposed to a Future, whose
// producing task is fixed at fork time. get() performs a verified await:
// under PromisePolicy::OWP the runtime checks the ownership policy first and
// may raise DeadlockAvoidedError / PolicyViolationError instead of blocking
// into a deadlock; under PromisePolicy::Unverified awaits are unchecked.
//
// Ownership: the making task owns the promise (is obligated to fulfill it)
// until it fulfills it or transfers ownership — explicitly via transfer_to()
// or at spawn time via async_owning(). A task that terminates still owning
// an unfulfilled promise *orphans* it: every present or future get() on an
// orphaned promise faults with DeadlockAvoidedError, since no task is
// obligated to fulfill it any more.
//
// Handles are copyable and shared; they must not outlive their Runtime
// (same rule as Future).

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <utility>

#include "runtime/errors.hpp"

namespace tj::core {
class PromiseNode;
}  // namespace tj::core

namespace tj::runtime {

class Runtime;
class TaskBase;

namespace detail {

/// Type-erased shared state. The phase machine serializes fulfillment:
/// exactly one fulfiller CASes Unfulfilled → Fulfilling, publishes the value
/// and releases Fulfilled; orphaning CASes Unfulfilled → Orphaned (losing to
/// an in-flight fulfill, whose value then still arrives).
class PromiseStateBase {
 public:
  enum Phase : std::uint32_t {
    kUnfulfilled = 0,
    kFulfilling = 1,
    kFulfilled = 2,
    kOrphaned = 3,
  };

  virtual ~PromiseStateBase();  // unregisters from the runtime (runtime.cpp)
  PromiseStateBase() = default;
  PromiseStateBase(const PromiseStateBase&) = delete;
  PromiseStateBase& operator=(const PromiseStateBase&) = delete;

  bool fulfilled() const {
    return phase_.load(std::memory_order_acquire) == kFulfilled;
  }
  bool settled() const {
    const std::uint32_t p = phase_.load(std::memory_order_acquire);
    return p == kFulfilled || p == kOrphaned;
  }

  /// CAS Unfulfilled → Fulfilling; the winner is the unique fulfiller.
  bool try_begin_fulfill() {
    std::uint32_t expected = kUnfulfilled;
    return phase_.compare_exchange_strong(expected, kFulfilling,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Publishes Fulfilled (the value, if any, must be stored already) and
  /// wakes every blocked awaiter.
  void publish_fulfilled() {
    phase_.store(kFulfilled, std::memory_order_release);
    phase_.notify_all();
    bump_wake_seq();
  }

  /// Marks the fulfill as failed (e.g. the value's copy threw): awaiters are
  /// woken and fault as if the promise were orphaned. Pre: the caller holds
  /// the kFulfilling claim (unconditional store is safe only then).
  void publish_orphaned() {
    phase_.store(kOrphaned, std::memory_order_release);
    phase_.notify_all();
    bump_wake_seq();
  }

  /// CAS Unfulfilled → Orphaned; loses to an in-flight fulfill (whose value
  /// then still arrives). Used by the runtime's orphan sweep.
  bool try_orphan() {
    std::uint32_t expected = kUnfulfilled;
    if (phase_.compare_exchange_strong(expected, kOrphaned,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire)) {
      phase_.notify_all();
      bump_wake_seq();
      return true;
    }
    return false;
  }

  /// Blocks (futex-style) until fulfilled or orphaned.
  void wait_settled() const {
    std::uint32_t p = phase_.load(std::memory_order_acquire);
    while (p == kUnfulfilled || p == kFulfilling) {
      phase_.wait(p, std::memory_order_acquire);
      p = phase_.load(std::memory_order_acquire);
    }
  }

  /// wait_settled() variant that also wakes — and throws — when the
  /// recovery supervisor posts a wait-break on `waiter` (null for external
  /// threads → plain wait). Defined in runtime.cpp (needs TaskBase).
  void wait_settled_interruptible(TaskBase* waiter) const;

  /// Spuriously wakes every blocked awaiter so an interruptible one
  /// rechecks its wait-break. Any thread. Bumps wake_seq_ rather than
  /// notifying phase_: std::atomic::wait absorbs notifies whose watched
  /// word is unchanged, so a phase_ notify would never reach an awaiter.
  void nudge_awaiters() { bump_wake_seq(); }

  /// The poison cause, readable only once kOrphaned is observable (the
  /// write happens-before the orphan CAS's release; nullptr otherwise).
  /// A poisoned promise is an orphaned promise whose owner died of a known
  /// fault — awaiters surface that fault instead of a bare deadlock error.
  std::exception_ptr poison_cause() const {
    return phase_.load(std::memory_order_acquire) == kOrphaned ? poison_
                                                               : nullptr;
  }

  std::uint64_t uid() const { return uid_; }
  Runtime* runtime() const { return rt_; }

 private:
  friend class tj::runtime::Runtime;
  friend void await_promise_state(PromiseStateBase&);
  friend void fulfill_check(PromiseStateBase&);
  friend void fulfill_record(PromiseStateBase&);
  friend void fulfill_committed(PromiseStateBase&);
  friend void transfer_promise_state(PromiseStateBase&, const TaskBase&);

  /// Pre: called by the single thread about to orphan this promise, BEFORE
  /// its try_orphan() — the CAS's release ordering publishes the write.
  void set_poison(std::exception_ptr cause) { poison_ = std::move(cause); }

  /// Advances the interruptible-wait generation and wakes its parkers.
  void bump_wake_seq() const {
    wake_seq_.fetch_add(1, std::memory_order_release);
    wake_seq_.notify_all();
  }

  std::uint64_t uid_ = 0;
  Runtime* rt_ = nullptr;
  core::PromiseNode* pnode_ = nullptr;  // owned by the runtime's OwpVerifier
  std::atomic<std::uint32_t> phase_{kUnfulfilled};
  // Interruptible-wait futex word; see wait_settled_interruptible(). Counts
  // wake events, never read for its value — only for change detection.
  mutable std::atomic<std::uint32_t> wake_seq_{0};
  std::exception_ptr poison_;  // see poison_cause()
};

template <typename T>
class PromiseState final : public PromiseStateBase {
 public:
  // Written by the unique fulfiller before publish_fulfilled(); read by
  // awaiters after observing kFulfilled (release/acquire on phase_).
  std::optional<T> value_;
};

template <>
class PromiseState<void> final : public PromiseStateBase {};

// Runtime operations on promise state, defined in runtime.cpp (keeps this
// header free of a cycle with runtime.hpp).

/// Verified await of the *current* task on `s`: OWP check → fault or block →
/// bookkeeping. Post: s.fulfilled() — an orphaned promise faults instead.
void await_promise_state(PromiseStateBase& s);

/// Ownership-policy check before fulfilling; throws on a violation in
/// FaultMode::Throw or when the promise has already settled.
void fulfill_check(PromiseStateBase& s);

/// Records the fulfill action in the trace (called by the CAS winner before
/// the value is published, so recorded fulfills precede recorded awaits).
void fulfill_record(PromiseStateBase& s);

/// Settles the promise in the OWP and drops its WFG owner edge.
void fulfill_committed(PromiseStateBase& s);

/// Transfers ownership of `s` from the current task to `to`.
void transfer_promise_state(PromiseStateBase& s, const TaskBase& to);

}  // namespace detail

template <typename T>
class Promise {
 public:
  Promise() = default;

  bool valid() const { return state_ != nullptr; }

  /// True iff a value has been published (never blocks).
  bool ready() const {
    require_valid();
    return state_->fulfilled();
  }

  /// Fulfills the promise with `value`. Any task may call this, but under
  /// PromisePolicy::OWP a non-owner fulfill is an ownership violation
  /// (PolicyViolationError in FaultMode::Throw, counted otherwise), and a
  /// second fulfill is a UsageError.
  void fulfill(T value) const {
    require_valid();
    detail::fulfill_check(*state_);
    if (!state_->try_begin_fulfill()) {
      throw UsageError("promise already settled");
    }
    detail::fulfill_record(*state_);
    try {
      state_->value_.emplace(std::move(value));
    } catch (...) {
      state_->publish_orphaned();
      throw;
    }
    state_->publish_fulfilled();
    detail::fulfill_committed(*state_);
  }

  /// Awaits the promise: verified by the ownership policy, blocks until a
  /// value arrives, then returns it (copy; many tasks may await one
  /// promise). Faults with DeadlockAvoidedError if blocking would deadlock
  /// or the promise is orphaned.
  T get() const {
    require_valid();
    detail::await_promise_state(*state_);
    return *state_->value_;
  }

  /// Alias for get() discarding the value.
  void await() const { (void)get(); }

  /// Transfers the fulfilment obligation to `to` (which must still be
  /// live). Only the owner may transfer; a transfer that would make the new
  /// owner wait on its own obligation faults with DeadlockAvoidedError.
  void transfer_to(const TaskBase& to) const {
    require_valid();
    detail::transfer_promise_state(*state_, to);
  }

  /// Promise uid (for diagnostics/tests).
  std::uint64_t uid() const {
    require_valid();
    return state_->uid();
  }

 private:
  friend class Runtime;

  explicit Promise(std::shared_ptr<detail::PromiseState<T>> s)
      : state_(std::move(s)) {}

  void require_valid() const {
    if (state_ == nullptr) {
      throw UsageError("Promise: empty handle");
    }
  }

  std::shared_ptr<detail::PromiseState<T>> state_;
};

template <>
class Promise<void> {
 public:
  Promise() = default;

  bool valid() const { return state_ != nullptr; }

  bool ready() const {
    require_valid();
    return state_->fulfilled();
  }

  void fulfill() const {
    require_valid();
    detail::fulfill_check(*state_);
    if (!state_->try_begin_fulfill()) {
      throw UsageError("promise already settled");
    }
    detail::fulfill_record(*state_);
    state_->publish_fulfilled();
    detail::fulfill_committed(*state_);
  }

  void get() const {
    require_valid();
    detail::await_promise_state(*state_);
  }

  void await() const { get(); }

  void transfer_to(const TaskBase& to) const {
    require_valid();
    detail::transfer_promise_state(*state_, to);
  }

  std::uint64_t uid() const {
    require_valid();
    return state_->uid();
  }

 private:
  friend class Runtime;

  explicit Promise(std::shared_ptr<detail::PromiseState<void>> s)
      : state_(std::move(s)) {}

  void require_valid() const {
    if (state_ == nullptr) {
      throw UsageError("Promise: empty handle");
    }
  }

  std::shared_ptr<detail::PromiseState<void>> state_;
};

}  // namespace tj::runtime
