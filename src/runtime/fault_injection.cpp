#include "runtime/fault_injection.hpp"

#include <algorithm>

#include "runtime/errors.hpp"

namespace tj::runtime {

namespace {
// splitmix64: a full-avalanche mix so consecutive event counters at one site
// produce an uncorrelated decision stream per seed.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}
}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan) {}

FaultInjector::~FaultInjector() { shutdown(); }

void FaultInjector::shutdown() {
  std::thread repair;
  std::vector<PendingWake> leftovers;
  {
    std::scoped_lock lock(repair_mu_);
    stop_ = true;
    leftovers.swap(pending_);
    repair = std::move(repair_thread_);
  }
  repair_cv_.notify_all();
  if (repair.joinable()) repair.join();
  // Flush anything the repair thread had not delivered yet: a dropped
  // wakeup must never be dropped *forever*.
  for (PendingWake& w : leftovers) w.renotify();
}

bool FaultInjector::decide(std::uint32_t period, std::uint32_t site,
                           std::atomic<std::uint64_t>& counter,
                           std::atomic<std::uint64_t>& injected) noexcept {
  if (period == 0 || !plan_.enabled()) return false;
  const std::uint64_t n = counter.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h =
      mix(plan_.seed ^ (static_cast<std::uint64_t>(site) << 56) ^ n);
  if (h % period != 0) return false;
  injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::inject_join_rejection() noexcept {
  return decide(plan_.join_rejection_period, 1, join_events_,
                join_rejections_);
}

bool FaultInjector::inject_await_rejection() noexcept {
  return decide(plan_.await_rejection_period, 2, await_events_,
                await_rejections_);
}

bool FaultInjector::perturb_wakeup(std::function<void()> renotify) {
  // One event counter feeds both wakeup sites so a single notification is
  // never both delayed and dropped.
  if (!plan_.enabled() ||
      (plan_.delayed_wakeup_period == 0 && plan_.dropped_wakeup_period == 0)) {
    return false;
  }
  const std::uint64_t n = wakeup_events_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = mix(plan_.seed ^ (3ULL << 56) ^ n);
  if (plan_.dropped_wakeup_period != 0 && h % plan_.dropped_wakeup_period == 0) {
    dropped_wakeups_.fetch_add(1, std::memory_order_relaxed);
    const auto due = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(plan_.redelivery_ms);
    {
      std::scoped_lock lock(repair_mu_);
      if (stop_) return false;  // tearing down: deliver inline instead
      pending_.push_back({due, std::move(renotify)});
      if (!repair_started_) {
        repair_started_ = true;
        repair_thread_ = std::thread([this] { repair_loop(); });
      }
    }
    repair_cv_.notify_one();
    return true;
  }
  if (plan_.delayed_wakeup_period != 0 &&
      (h >> 32) % plan_.delayed_wakeup_period == 0) {
    delayed_wakeups_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
  }
  return false;
}

void FaultInjector::maybe_delay_publication() noexcept {
  if (decide(plan_.delayed_wakeup_period, 6, publication_events_,
             delayed_wakeups_)) {
    std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_us));
  }
}

void FaultInjector::maybe_fail_fulfill() {
  if (decide(plan_.fulfill_failure_period, 4, fulfill_events_,
             fulfill_failures_)) {
    throw InjectedFaultError(
        "injected fault: fulfiller failed before fulfilling the promise");
  }
}

std::uint64_t FaultInjector::detector_delay_us() noexcept {
  if (decide(plan_.detector_delay_period, 7, detector_tick_events_,
             detector_delays_)) {
    return plan_.detector_delay_us;
  }
  return 0;
}

bool FaultInjector::drop_detector_batch() noexcept {
  return decide(plan_.detector_drop_period, 8, detector_batch_events_,
                detector_drops_);
}

bool FaultInjector::kill_detector() noexcept {
  if (detector_deaths_.load(std::memory_order_relaxed) >=
      plan_.max_detector_deaths) {
    return false;
  }
  return decide(plan_.detector_death_period, 9, detector_life_events_,
                detector_deaths_);
}

bool FaultInjector::should_kill_worker() noexcept {
  if (worker_deaths_.load(std::memory_order_relaxed) >=
      plan_.max_worker_deaths) {
    return false;
  }
  return decide(plan_.worker_death_period, 5, boundary_events_,
                worker_deaths_);
}

void FaultInjector::repair_loop() {
  std::unique_lock lock(repair_mu_);
  while (true) {
    if (pending_.empty()) {
      if (stop_) return;
      repair_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    auto next = std::min_element(
        pending_.begin(), pending_.end(),
        [](const PendingWake& a, const PendingWake& b) { return a.due < b.due; });
    // Copy the deadline out of the vector: wait_until holds its time_point
    // by reference across the unlocked wait, and a concurrent
    // perturb_wakeup push_back may reallocate pending_ underneath it.
    const auto due = next->due;
    if (due > now && !stop_) {
      repair_cv_.wait_until(lock, due);
      continue;
    }
    PendingWake wake = std::move(*next);
    pending_.erase(next);
    lock.unlock();
    wake.renotify();  // redeliver the dropped notification
    lock.lock();
  }
}

FaultStats FaultInjector::stats() const {
  FaultStats s;
  s.join_rejections = join_rejections_.load(std::memory_order_relaxed);
  s.await_rejections = await_rejections_.load(std::memory_order_relaxed);
  s.delayed_wakeups = delayed_wakeups_.load(std::memory_order_relaxed);
  s.dropped_wakeups = dropped_wakeups_.load(std::memory_order_relaxed);
  s.fulfill_failures = fulfill_failures_.load(std::memory_order_relaxed);
  s.worker_deaths = worker_deaths_.load(std::memory_order_relaxed);
  s.detector_delays = detector_delays_.load(std::memory_order_relaxed);
  s.detector_drops = detector_drops_.load(std::memory_order_relaxed);
  s.detector_deaths = detector_deaths_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace tj::runtime
