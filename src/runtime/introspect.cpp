#include "runtime/introspect.hpp"

#include <csignal>
#include <iostream>
#include <sstream>
#include <utility>

#include "core/ladder.hpp"
#include "obs/recorder.hpp"
#include "obs/witness.hpp"
#include "runtime/runtime.hpp"

namespace tj::runtime {

namespace {

/// How many recent events each blocked wait quotes in a snapshot.
constexpr std::size_t kRecentEvents = 8;

const char* edge_kind_name(wfg::WaitsForGraph::EdgeKind k) {
  switch (k) {
    case wfg::WaitsForGraph::EdgeKind::Approved:
      return "approved";
    case wfg::WaitsForGraph::EdgeKind::Probation:
      return "probation";
    default:
      return "owner";
  }
}

}  // namespace

RuntimeSnapshot snapshot(const Runtime& rt) {
  RuntimeSnapshot s;
  s.configured = rt.config().policy;
  s.active = rt.active_policy();
  s.tasks_created = rt.tasks_created();
  s.promises_made = rt.promises_made();
  s.gate = rt.gate_stats();
  s.verifier_bytes = rt.policy_bytes();
  s.owp_bytes = rt.owp_bytes();

  const core::JoinGate& gate = rt.gate();
  s.wfg_edges = gate.graph().edges();
  s.witnesses = gate.witnesses();
  s.witnesses_dropped = gate.witnesses_dropped();

  // The verifier is a ladder whenever a governor could act on it.
  if (const auto* ladder = dynamic_cast<const core::LadderVerifier*>(
          const_cast<Runtime&>(rt).verifier())) {
    s.ladder_attached = true;
    s.ladder_level = ladder->level();
    s.ladder_levels = ladder->level_count();
  }

  if (const ResourceGovernor* gov = rt.governor()) {
    s.governor_attached = true;
    s.governor = gov->snapshot();
    s.governor_pressure = gov->under_pressure();
    s.degradation_history = gov->history_string();
    s.live_tasks = s.governor.live_tasks;
  }

  if (const AdmissionController* adm = rt.admission()) {
    s.admission_attached = true;
    s.tenants = adm->snapshot();
    s.requests_shed_total = adm->total_shed();
  }

  obs::FlightRecorder* rec = rt.recorder();
  if (rec != nullptr) {
    s.recorder_attached = true;
    s.obs_events = rec->events_recorded();
    s.obs_dropped = rec->events_dropped();
  }

  s.contention_enabled = obs::contention_profiling_enabled();
  s.lock_sites = obs::ContentionRegistry::instance().snapshot();
  s.workers = rt.scheduler().worker_states().totals();

  if (const RecoverySupervisor* rs = rt.recovery()) {
    s.recovery_attached = true;
    s.recovery = rs->status();
  }

  if (const JoinWatchdog* wd = rt.watchdog()) {
    s.watchdog_attached = true;
    s.watchdog_stalls = wd->stalls_reported();
    s.watchdog_cycles = wd->cycles_found();
    for (const JoinWatchdog::BlockedWait& b : wd->blocked_now()) {
      RuntimeSnapshot::BlockedWait out;
      out.waiter = b.waiter;
      out.target = b.target;
      out.on_promise = b.on_promise;
      out.verdict = b.verdict;
      out.blocked_ms = static_cast<std::uint64_t>(b.blocked_for.count());
      if (rec != nullptr) {
        for (const obs::Event& e : rec->recent(b.waiter, kRecentEvents)) {
          out.recent_events.push_back(obs::to_string(e));
        }
      }
      s.blocked.push_back(std::move(out));
    }
  }
  return s;
}

std::string RuntimeSnapshot::to_string() const {
  std::ostringstream os;
  os << "=== runtime snapshot ===\n";
  os << "policy: configured=" << core::to_string(configured)
     << " active=" << core::to_string(active);
  if (ladder_attached) {
    os << " ladder=" << ladder_level << "/" << (ladder_levels - 1);
  }
  os << "\n";
  if (!degradation_history.empty()) {
    os << "degradations: " << degradation_history << "\n";
  }
  os << "tasks=" << tasks_created << " promises=" << promises_made
     << " live=" << live_tasks << " verifier_bytes=" << verifier_bytes
     << " owp_bytes=" << owp_bytes << "\n";
  os << "gate: joins=" << gate.joins_checked
     << " rejections=" << gate.policy_rejections
     << " false_positives=" << gate.false_positives
     << " deadlocks_averted=" << gate.deadlocks_averted
     << " cycle_checks=" << gate.cycle_checks
     << " awaits=" << gate.awaits_checked
     << " owp_rejections=" << gate.owp_rejections << "\n";
  if (gate.requests_checked != 0) {
    os << "admission (gate): checked=" << gate.requests_checked
       << " admitted=" << gate.requests_admitted
       << " shed=" << gate.requests_shed << "\n";
  }
  if (governor_attached) {
    os << "governor: pressure=" << (governor_pressure ? "YES" : "no")
       << " verifier_bytes=" << governor.verifier_bytes
       << " nodes=" << governor.verifier_nodes
       << " wfg_edges=" << governor.wfg_edges
       << " p99_check=" << governor.policy_check_p99_ns << "ns\n";
  }
  if (admission_attached) {
    os << "admission: " << tenants.size() << " tenant(s), "
       << requests_shed_total << " shed total\n";
    for (const auto& t : tenants) {
      os << "  " << t.name << ": in_flight=" << t.in_flight
         << " admitted=" << t.admitted << " shed=" << t.shed
         << " released=" << t.released
         << " verdict=" << tj::runtime::to_string(t.current_verdict);
      if (t.in_cooldown) os << " COOLDOWN";
      if (t.shed != 0) {
        os << " last_shed=" << tj::runtime::to_string(t.last_shed_cause);
      }
      os << "\n";
    }
  }
  if (recorder_attached) {
    os << "recorder: events=" << obs_events << " dropped=" << obs_dropped
       << "\n";
  }
  if (contention_enabled || !lock_sites.empty()) {
    os << "locks: " << lock_sites.size() << " site(s)"
       << (contention_enabled ? "" : " (profiling off)") << "\n";
    for (const obs::SiteSnapshot& site : lock_sites) {
      const double share =
          site.acquisitions == 0
              ? 0.0
              : static_cast<double>(site.contended) /
                    static_cast<double>(site.acquisitions);
      os << "  " << site.name << ": acquisitions=" << site.acquisitions
         << " contended=" << site.contended << " share=" << share
         << " wait_p99=" << site.wait.p99_ns << "ns"
         << " wait_max=" << site.wait.max_ns << "ns"
         << " long_holds=" << site.hold.count << "\n";
    }
    os << "workers: " << workers.workers
       << " effective_parallelism=" << workers.effective_parallelism() << "\n";
    for (std::size_t i = 0; i < obs::kWorkerStateCount; ++i) {
      const std::uint64_t total = workers.total_ns();
      const double share =
          total == 0 ? 0.0
                     : static_cast<double>(workers.state_ns[i]) /
                           static_cast<double>(total);
      os << "  " << obs::to_string(static_cast<obs::WorkerState>(i))
         << ": now=" << workers.current[i] << " share=" << share << "\n";
    }
  }
  if (recovery_attached) {
    os << "recovery: detector="
       << (recovery.detector.running ? "running" : "DEAD")
       << (recovery.detector.failed_over ? " FAILED-OVER" : "")
       << " lag=" << recovery.detector.lag_events
       << " lost=" << recovery.detector.events_lost
       << " applied=" << recovery.detector.events_applied
       << " scans=" << recovery.detector.authoritative_scans
       << " confirmed=" << recovery.detector.cycles_confirmed
       << " respawns=" << recovery.detector.respawns
       << " recovered=" << recovery.cycles_recovered
       << " breaks=" << recovery.breaks_posted
       << " registered=" << recovery.waits_registered << "\n";
    for (const RecoveryStatus::Incident& inc : recovery.recent) {
      os << "  recovered: victim " << inc.victim << " waited on "
         << (inc.on_promise ? "p" : "") << inc.waited_on << " (cycle len "
         << inc.cycle_len << ")\n";
    }
  }
  os << "wfg: " << wfg_edges.size() << " edge(s)\n";
  for (const auto& e : wfg_edges) {
    os << "  " << e.from << " -> ";
    if (wfg::is_promise_node(e.to)) {
      os << "p" << wfg::promise_uid_of(e.to);
    } else {
      os << e.to;
    }
    os << " [" << edge_kind_name(e.kind) << "]\n";
  }
  os << "witnesses: " << witnesses.size() << " recent, " << witnesses_dropped
     << " dropped\n";
  for (const core::Witness& w : witnesses) {
    std::istringstream lines(obs::to_text(w));
    for (std::string line; std::getline(lines, line);) {
      os << "  " << line << "\n";
    }
  }
  if (watchdog_attached) {
    os << "blocked: " << blocked.size() << " wait(s)\n";
    for (const BlockedWait& b : blocked) {
      os << "  " << b.waiter << " on " << (b.on_promise ? "p" : "")
         << b.target << " for " << b.blocked_ms << "ms (" << b.verdict
         << ")\n";
      for (const std::string& ev : b.recent_events) {
        os << "    " << ev << "\n";
      }
    }
  } else {
    os << "blocked: unavailable (watchdog disabled)\n";
  }
  os << "=== end snapshot ===\n";
  return os.str();
}

// ---- hooks ----

namespace {
/// The most recently constructed live hook — the signal target. A plain
/// lock-free atomic so the signal handler's load is async-signal-safe.
std::atomic<IntrospectionHook*> g_hook{nullptr};

extern "C" void introspect_signal_handler(int) {
  IntrospectionHook::request_current();
}
}  // namespace

IntrospectionHook::IntrospectionHook(const Runtime& rt, std::uint32_t poll_ms,
                                     Sink sink)
    : rt_(rt), poll_ms_(poll_ms == 0 ? 1 : poll_ms), sink_(std::move(sink)) {
  g_hook.store(this, std::memory_order_release);
  thread_ = std::thread([this] { poll_loop(); });
}

IntrospectionHook::~IntrospectionHook() {
  IntrospectionHook* self = this;
  g_hook.compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
  {
    std::scoped_lock lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  thread_.join();
}

bool IntrospectionHook::request_current() {
  IntrospectionHook* h = g_hook.load(std::memory_order_acquire);
  if (h == nullptr) return false;
  h->request();
  return true;
}

bool IntrospectionHook::install_signal_handler() {
#ifdef SIGUSR1
  std::signal(SIGUSR1, introspect_signal_handler);
  return true;
#else
  return false;
#endif
}

void IntrospectionHook::poll_loop() {
  std::unique_lock lock(mu_);
  const auto poll = std::chrono::milliseconds(poll_ms_);
  while (!stop_.load(std::memory_order_relaxed)) {
    cv_.wait_for(lock, poll,
                 [this] { return stop_.load(std::memory_order_relaxed); });
    if (stop_.load(std::memory_order_relaxed)) return;
    if (!want_.exchange(false, std::memory_order_relaxed)) continue;
    lock.unlock();
    const RuntimeSnapshot s = snapshot(rt_);
    if (sink_) {
      sink_(s);
    } else {
      std::cerr << s.to_string();
    }
    dumps_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace tj::runtime
