#pragma once
// Work-sharing scheduler with the two join disciplines of HJ's runtimes
// (paper footnote 4):
//   Blocking    — a worker blocks in join; compensation workers (up to a cap)
//                 keep the pool busy;
//   Cooperative — a joiner claims a still-queued target and runs it inline
//                 (help-first); it blocks only on an already-running target.
//
// Progress argument for Cooperative (given task-level deadlock freedom,
// which the TJ policy guarantees): a blocked joiner waits on a *running*
// task; every running task sits on some thread whose stack top is either
// executing (progress) or itself blocked on a running task; following that
// chain must terminate because the task waits-for graph is acyclic.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/contention.hpp"
#include "runtime/config.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

class FaultInjector;

class Scheduler {
 public:
  /// `injector` (may be nullptr) supplies worker-death faults: a worker
  /// asked to die exits at a task boundary and the pool respawns a
  /// replacement, modelling thread crash + supervisor restart.
  /// `rec` (may be nullptr) records inline-help, compensation-growth and
  /// worker-death incidents into the flight recorder.
  Scheduler(SchedulerMode mode, unsigned workers, unsigned max_threads,
            FaultInjector* injector = nullptr,
            obs::FlightRecorder* rec = nullptr);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues a spawned task.
  void submit(std::shared_ptr<TaskBase> task);

  /// Waits until `target` terminates, per the configured mode. Called with
  /// the joining task's context current; the policy check already passed.
  void join_wait(TaskBase& target);

  /// Deadline variant: waits at most `timeout`; true iff the target
  /// terminated. A cooperative joiner that wins the inline claim runs the
  /// target to completion regardless of the deadline (it is making progress,
  /// not blocked — the timeout bounds *waiting*, not work) and returns true.
  bool join_wait_for(TaskBase& target, std::chrono::nanoseconds timeout);

  /// Live (submitted, not yet terminated) task count — the governor's and
  /// the spawn-backpressure watermark's admission signal.
  std::size_t live_tasks() const {
    return live_tasks_.load(std::memory_order_relaxed);
  }

  /// Blocks until every submitted task has terminated.
  void quiesce();

  /// Brackets a blocking wait performed OUTSIDE join_wait (e.g. a barrier
  /// await): when the caller is a worker thread, the pool may grow a
  /// compensation worker so queued tasks keep running — in both scheduler
  /// modes, since cooperative inlining cannot help with non-join blocking.
  void enter_blocking_region();
  void exit_blocking_region();

  SchedulerMode mode() const { return mode_; }
  unsigned thread_count() const;
  std::uint64_t tasks_executed() const;
  std::uint64_t tasks_inlined() const;

  /// Per-worker state timelines (Running / BlockedJoin / BlockedLock /
  /// Stealing / Idle). State words are always published; the timelines are
  /// timed only while contention profiling is enabled (see obs/contention).
  const obs::WorkerStateBoard& worker_states() const {
    return worker_states_;
  }

 private:
  friend class Runtime;

  void worker_loop();
  void run_claimed(TaskBase& task);
  void add_worker_locked();  // pre: mu_ held
  void note_task_done();

  /// Workers alive right now (pre: mu_ held). `threads_` keeps dead workers'
  /// std::thread objects until shutdown, so its size overcounts by
  /// `dead_workers_`; every liveness/compensation decision must use this, or
  /// after enough injected deaths the pool believes it has idle workers while
  /// every live one is blocked in a join — and queued tasks starve.
  std::size_t live_workers_locked() const {
    return threads_.size() - dead_workers_;
  }

  /// Records a compensation-worker spawn (pre: mu_ held, worker just added).
  void record_compensation_locked();

  const SchedulerMode mode_;
  const unsigned target_parallelism_;
  const unsigned max_threads_;
  FaultInjector* const injector_;  // not owned; nullptr ⇒ no fault injection
  obs::FlightRecorder* const rec_;  // not owned; nullptr ⇒ recording off

  // Queue/compensation lock is profiled ("sched.queue"): every submit,
  // dequeue and compensation decision serializes here, so its contended
  // share is the scheduler half of the scaling ceiling. The condvars are
  // condition_variable_any to wait on the wrapper type.
  mutable obs::ProfiledMutex mu_{"sched.queue"};
  std::condition_variable_any cv_;
  std::deque<std::shared_ptr<TaskBase>> queue_;  // guarded by mu_
  std::vector<std::thread> threads_;             // guarded by mu_
  std::size_t dead_workers_ = 0;                 // guarded by mu_
  unsigned blocked_workers_ = 0;                 // guarded by mu_
  bool stop_ = false;                            // guarded by mu_

  obs::ProfiledMutex quiesce_mu_{"sched.quiesce"};
  std::condition_variable_any quiesce_cv_;
  std::atomic<std::size_t> live_tasks_{0};

  obs::WorkerStateBoard worker_states_;

  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> inlined_{0};
};

/// Thread-local task context (set around every task body execution,
/// including inline runs and the root task).
TaskBase* current_task_or_null();
TaskBase& current_task();  // throws UsageError when not in a task

namespace detail {
/// RAII compensation bracket around a non-join blocking wait (promise
/// awaits, barrier waits): exception-safe, unlike calling enter/exit by
/// hand.
class BlockingRegionGuard {
 public:
  explicit BlockingRegionGuard(Scheduler& s) : sched_(s) {
    sched_.enter_blocking_region();
  }
  ~BlockingRegionGuard() { sched_.exit_blocking_region(); }
  BlockingRegionGuard(const BlockingRegionGuard&) = delete;
  BlockingRegionGuard& operator=(const BlockingRegionGuard&) = delete;

 private:
  Scheduler& sched_;
};

/// RAII swap of the thread-local current task. Also swaps the obs-layer
/// request context so events emitted while `t` runs (including inline runs
/// on a joiner's stack) are attributed to t's request, not the host
/// thread's.
class CurrentTaskGuard {
 public:
  explicit CurrentTaskGuard(TaskBase* t);
  ~CurrentTaskGuard();
  CurrentTaskGuard(const CurrentTaskGuard&) = delete;
  CurrentTaskGuard& operator=(const CurrentTaskGuard&) = delete;

 private:
  TaskBase* prev_;
  obs::RequestContext prev_ctx_;
};
}  // namespace detail

}  // namespace tj::runtime
