#pragma once
// Caller-driven exponential backoff with deterministic jitter, for retry
// loops around deadline-aware joins:
//
//   Backoff b(std::chrono::milliseconds(1));
//   while (f.join_for(b.next()) == JoinOutcome::Timeout) {
//     do_something_useful();  // shed load, poll cancellation, log, ...
//   }
//
// The delay doubles per call up to `max`, with ±25% jitter from a seeded
// xorshift stream so synchronized waiters de-correlate without pulling in
// <random> or nondeterminism (the same seed replays the same delays —
// matching the repo's deterministic-chaos testing discipline).

#include <chrono>
#include <cstdint>

namespace tj::runtime {

class Backoff {
 public:
  explicit Backoff(
      std::chrono::nanoseconds initial = std::chrono::milliseconds(1),
      std::chrono::nanoseconds max = std::chrono::milliseconds(100),
      std::uint64_t seed = 0x9e3779b97f4a7c15ull)
      : initial_(initial), max_(max), cur_(initial), state_(seed | 1) {}

  /// The next delay: current step ±25% jitter; the step then doubles,
  /// saturating at `max`.
  std::chrono::nanoseconds next() {
    const std::int64_t base = cur_.count();
    // Jitter in [-base/4, +base/4], from the xorshift stream.
    const std::int64_t quarter = base / 4;
    const std::int64_t jitter =
        quarter > 0 ? static_cast<std::int64_t>(xorshift() %
                                                (2 * quarter + 1)) -
                          quarter
                    : 0;
    const auto delay = std::chrono::nanoseconds(base + jitter);
    cur_ = cur_ * 2 <= max_ ? cur_ * 2 : max_;
    return delay;
  }

  /// Back to the initial step (e.g. after a successful operation).
  void reset() { cur_ = initial_; }

  std::uint32_t steps_taken() const { return steps_; }

 private:
  std::uint64_t xorshift() {
    ++steps_;
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }

  std::chrono::nanoseconds initial_;
  std::chrono::nanoseconds max_;
  std::chrono::nanoseconds cur_;
  std::uint64_t state_;
  std::uint32_t steps_ = 0;
};

}  // namespace tj::runtime
