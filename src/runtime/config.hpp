#pragma once
// Runtime configuration: which policy verifies joins, how rejections fault,
// and which of the two HJ-style schedulers executes tasks (paper footnote 4
// evaluates both a blocking and a cooperative work-sharing runtime).

#include <cstdint>
#include <string_view>
#include <thread>

#include "core/async_detect.hpp"
#include "core/guarded.hpp"
#include "core/policy_ids.hpp"
#include "obs/recorder.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/governor.hpp"
#include "runtime/watchdog.hpp"

namespace tj::runtime {

enum class SchedulerMode : std::uint8_t {
  /// A worker whose join must wait blocks its thread; the pool spawns a
  /// bounded number of compensation workers to preserve parallelism
  /// (HJ's blocking work-sharing runtime).
  Blocking,
  /// A worker whose join target is still queued claims and runs it inline
  /// (help-first work sharing); it only blocks when the target is already
  /// running elsewhere (HJ's cooperative runtime, used for NQueens).
  Cooperative,
};

constexpr std::string_view to_string(SchedulerMode m) {
  return m == SchedulerMode::Blocking ? "blocking" : "cooperative";
}

struct Config {
  core::PolicyChoice policy = core::PolicyChoice::TJ_SP;
  /// Verification of promise operations (orthogonal to `policy`, which
  /// covers futures/joins). OWP is cheap when unused — a program that never
  /// makes a promise pays one relaxed load per join — so it defaults on.
  core::PromisePolicy promise_policy = core::PromisePolicy::OWP;
  core::FaultMode fault = core::FaultMode::Fallback;
  SchedulerMode scheduler = SchedulerMode::Cooperative;
  /// Worker threads; 0 → std::thread::hardware_concurrency().
  unsigned workers = 0;
  /// Upper bound on total pool threads in Blocking mode (compensation cap).
  unsigned max_threads = 256;
  /// Record the execution's init/fork/join actions as a trace (Def. 3.1),
  /// retrievable via Runtime::recorded_trace(). For tests and debugging;
  /// adds a lock per fork/join.
  bool record_trace = false;
  /// Non-zero: inject pseudo-random yields at fork/join boundaries to
  /// perturb interleavings (schedule fuzzing for tests). Different seeds
  /// explore different schedules; 0 disables injection entirely.
  std::uint64_t chaos_seed = 0;
  /// When true, any task's uncaught failure cancels every still-pending task
  /// in the runtime (the root cancellation scope cancels on fault): queued
  /// siblings complete with CancelledError, their promises are poisoned, and
  /// blocked dependents fail fast instead of waiting on work that will never
  /// finish. Default preserves the fire-and-forget semantics: a failure
  /// surfaces only at the failed task's own join.
  bool cancel_on_fault = false;
  /// Join watchdog (stall detector); disabled by default — joins then pay
  /// no watchdog cost at all.
  WatchdogConfig watchdog;
  /// Deterministic fault injection for chaos testing; plan.seed == 0 (the
  /// default) disables the layer entirely.
  FaultPlan fault_plan;
  /// Flight recorder (obs.enabled): per-thread ring buffers of every
  /// fork/join/verdict/scheduler event plus the metrics registry,
  /// retrievable via Runtime::recorder(). Off by default — instrumentation
  /// sites then cost one null-pointer branch each.
  obs::ObsConfig obs;
  /// Resource governance (governor.enabled): the configured policy becomes a
  /// degradation ladder whose levels a background governor can step down
  /// under verifier-footprint / WFG-size / latency pressure (see
  /// runtime/governor.hpp). Two GovernorConfig knobs are *inline* machinery
  /// enforced regardless of `enabled`: spawn_inline_watermark (spawn
  /// backpressure) and tenants (per-tenant admission control, wired as
  /// Runtime::admission() — see runtime/admission.hpp). Off by default —
  /// joins then pay no governance cost at all.
  GovernorConfig governor;
  /// Async-detection knobs, meaningful only under PolicyChoice::Async (the
  /// optimistic gate mode): tick period, lag/drop budgets, respawn budget.
  core::DetectorConfig detector;

  unsigned effective_workers() const {
    if (workers != 0) return workers;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 4;
  }

  /// Canonicalizes dependent knobs; the Runtime constructor applies this.
  /// PolicyChoice::Async REQUIRES the flight recorder (the detector consumes
  /// its event stream), so obs.enabled is forced on.
  static Config normalize(Config c) {
    if (c.policy == core::PolicyChoice::Async) c.obs.enabled = true;
    return c;
  }
};

}  // namespace tj::runtime
