#pragma once
// Exceptions raised by the instrumented runtime. A faulting join raises
// *in the joining task* (the paper's "fault" in Algorithm 1), giving the
// program the chance to recover — the stated advantage of avoidance over
// detection.

#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "core/witness.hpp"

namespace tj::runtime {

/// Base class of all runtime errors.
class TjError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The join was rejected by the policy and cycle detection confirmed that
/// blocking would truly deadlock. Raised without blocking. Carries the
/// rejection's provenance witness (see core/witness.hpp) so a handler can
/// render or validate exactly why the edge was forbidden; the witness is a
/// plain value, safe to keep past the runtime's teardown.
class DeadlockAvoidedError : public TjError {
 public:
  using TjError::TjError;
  DeadlockAvoidedError(const std::string& msg, core::Witness why)
      : TjError(msg), witness_(std::move(why)) {}

  /// The captured provenance; empty() when none was recorded.
  const core::Witness& witness() const { return witness_; }

 private:
  core::Witness witness_;
};

/// The join was rejected by the policy and FaultMode::Throw is active (no
/// precise fallback requested): raised without blocking. Carries the
/// rejecting policy's witness like DeadlockAvoidedError.
class PolicyViolationError : public TjError {
 public:
  using TjError::TjError;
  PolicyViolationError(const std::string& msg, core::Witness why)
      : TjError(msg), witness_(std::move(why)) {}

  const core::Witness& witness() const { return witness_; }

 private:
  core::Witness witness_;
};

/// API misuse: e.g. async()/get() outside a runtime task context, or a
/// second root task on one runtime.
class UsageError : public TjError {
 public:
  using TjError::TjError;
};

/// Which admission budget shed a request (see runtime/admission.hpp).
enum class AdmissionCause : std::uint8_t {
  None,                ///< admitted (no budget tripped)
  InFlightBudget,      ///< tenant's concurrent-request budget exhausted
  LiveTaskBudget,      ///< runtime live-task count over the tenant's budget
  VerifierBytesBudget, ///< verifier-state footprint over the tenant's budget
  Cooldown,            ///< tenant still in its post-shed cooldown window
};

constexpr std::string_view to_string(AdmissionCause c) {
  switch (c) {
    case AdmissionCause::None: return "admitted";
    case AdmissionCause::InFlightBudget: return "in-flight-budget";
    case AdmissionCause::LiveTaskBudget: return "live-task-budget";
    case AdmissionCause::VerifierBytesBudget: return "verifier-bytes-budget";
    case AdmissionCause::Cooldown: return "cooldown";
  }
  return "<bad admission cause>";
}

/// The request was shed at the front door by per-tenant admission control
/// (runtime/admission.hpp): one of the tenant's budgets — in-flight
/// requests, runtime live tasks, verifier bytes — was exhausted, or the
/// tenant is inside its post-shed cooldown. A shed is load shedding, not a
/// fault: nothing was spawned, cancelled or poisoned, and the caller is
/// expected to retry later (runtime/backoff.hpp) or drop the request.
class AdmissionRejected : public TjError {
 public:
  AdmissionRejected(const std::string& msg, std::string tenant,
                    AdmissionCause cause)
      : TjError(msg), tenant_(std::move(tenant)), cause_(cause) {}

  /// The shed tenant's configured name.
  const std::string& tenant() const { return tenant_; }
  /// The budget that tripped (never AdmissionCause::None).
  AdmissionCause cause() const { return cause_; }

 private:
  std::string tenant_;
  AdmissionCause cause_ = AdmissionCause::None;
};

/// The operation was abandoned because the enclosing CancellationScope was
/// cancelled (usually in reaction to a sibling task's fault). Joins on a
/// cancelled task, awaits on a poisoned promise, and waits on a poisoned
/// barrier all raise this instead of blocking; `cause()` is the originating
/// fault when one is known (e.g. the sibling's DeadlockAvoidedError).
class CancelledError : public TjError {
 public:
  explicit CancelledError(const std::string& msg, std::exception_ptr cause = {})
      : TjError(msg), cause_(std::move(cause)) {}

  /// The fault that triggered the cancellation, or nullptr when the scope
  /// was cancelled explicitly.
  const std::exception_ptr& cause() const { return cause_; }

 private:
  std::exception_ptr cause_;
};

/// A fault injected by the deterministic fault-injection layer (testing
/// only; see runtime/fault_injection.hpp). Behaves like any other task
/// failure: captured in the faulting task and rethrown at joins.
class InjectedFaultError : public TjError {
 public:
  using TjError::TjError;
};

}  // namespace tj::runtime
