#pragma once
// Exceptions raised by the instrumented runtime. A faulting join raises
// *in the joining task* (the paper's "fault" in Algorithm 1), giving the
// program the chance to recover — the stated advantage of avoidance over
// detection.

#include <stdexcept>
#include <string>

namespace tj::runtime {

/// Base class of all runtime errors.
class TjError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// The join was rejected by the policy and cycle detection confirmed that
/// blocking would truly deadlock. Raised without blocking.
class DeadlockAvoidedError : public TjError {
 public:
  using TjError::TjError;
};

/// The join was rejected by the policy and FaultMode::Throw is active (no
/// precise fallback requested): raised without blocking.
class PolicyViolationError : public TjError {
 public:
  using TjError::TjError;
};

/// API misuse: e.g. async()/get() outside a runtime task context, or a
/// second root task on one runtime.
class UsageError : public TjError {
 public:
  using TjError::TjError;
};

}  // namespace tj::runtime
