#pragma once
// Public convenience API mirroring the paper's program model (Sec. 2.2):
//
//   tj::runtime::Runtime rt({.policy = tj::core::PolicyChoice::TJ_SP});
//   rt.root([] {
//     auto f = tj::runtime::async([] { return 41; });
//     int x = f.get() + 1;  // a verified join
//   });
//
// async() forks a child of the *current* task; Future::get()/join() performs
// a policy-checked join and may fault with DeadlockAvoidedError instead of
// blocking into a deadlock.

#include "runtime/config.hpp"
#include "runtime/errors.hpp"
#include "runtime/future.hpp"
#include "runtime/promise.hpp"
#include "runtime/runtime.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

/// Forks `fn` as a child task of the current task (the paper's `async`).
/// Must be called from within a task context (root or another task).
template <typename F>
auto async(F&& fn) {
  TaskBase& cur = current_task();
  return cur.runtime()->spawn(std::forward<F>(fn));
}

/// Makes a promise owned by the current task (the `make` action of the
/// ownership-policy model). The owner must fulfill it or transfer the
/// obligation before terminating, or the promise is orphaned.
template <typename T>
Promise<T> make_promise() {
  TaskBase& cur = current_task();
  return cur.runtime()->template make_promise<T>();
}

/// Forks `fn` as a child of the current task and hands it ownership of `p`
/// before it can run: the child is now the task obligated to fulfill `p`.
template <typename T, typename F>
auto async_owning(const Promise<T>& p, F&& fn) {
  TaskBase& cur = current_task();
  return cur.runtime()->spawn_owning(p, std::forward<F>(fn));
}

/// Request-span attribution (service telemetry). Install a RequestScope on
/// the submitting thread around a request's admission check + spawn: every
/// event the recorder emits on that thread, and every task spawned while
/// the scope is live (transitively, through async/spawn_owning/promises),
/// is stamped with the request id and tenant lane. Zero-cost while the
/// recorder is off. `tenant` follows Event::tenant encoding: 0 = none,
/// else admission tenant index + 1.
using RequestScope = obs::RequestScope;
using RequestContext = obs::RequestContext;

}  // namespace tj::runtime
