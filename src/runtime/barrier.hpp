#pragma once
// CheckedBarrier: a cyclic barrier whose await() is verified for deadlock by
// the generalized (Armus-style) resource graph before blocking — extending
// the library's avoidance guarantees from joins to barrier synchronisation,
// the domain of the paper's fallback detector.
//
// Barriers belonging to one BarrierDomain share a ResourceGraph, so cycles
// *across* barriers (task A awaits barrier X while holding up barrier Y that
// task B awaits while holding up X) are caught, not just single-barrier
// misuse. Join-based waits remain the TJ verifier's business; a barrier
// domain covers the barrier-only cycles among its own barriers.
//
// Registration: a party is a task uid. A task registers itself with
// register_party(), or a coordinator that holds the Future of a spawned task
// pre-registers it with register_party(uid) BEFORE the task's first await —
// mirroring HJ's phased-async registration-at-spawn, and required whenever
// parties outnumber workers (self-registering parties would have to
// rendezvous, which can starve a bounded pool).

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/errors.hpp"
#include "runtime/scheduler.hpp"
#include "wfg/resource_graph.hpp"

namespace tj::runtime {

class BarrierDomain;

/// A cyclic barrier over a dynamic set of parties.
class CheckedBarrier : public std::enable_shared_from_this<CheckedBarrier> {
 public:
  /// Registers the calling task as a party.
  void register_party();
  /// Registers a known task (by uid) as a party — coordinator-side, must
  /// happen-before that task's first await/arrive on this barrier.
  void register_party(wfg::TaskUid uid);

  /// Blocks until every registered party arrived at the current phase.
  /// Verified against the domain's resource graph: if blocking would close
  /// a cross-barrier cycle, throws DeadlockAvoidedError WITHOUT blocking —
  /// and DROPS the faulted party from the barrier entirely (it must
  /// re-register to rejoin), so its peers are released when everyone else
  /// has arrived rather than stranded behind a party that faulted out.
  /// Returns true for exactly one party per phase (the releaser).
  bool await();

  /// Poisons the barrier (idempotent): every current and future await /
  /// arrive / register throws CancelledError carrying `cause`, blocked
  /// waiters are woken and their resource-graph wait entries cleared.
  /// Invoked by a cancelling CancellationScope; also callable directly.
  void poison(std::exception_ptr cause);

  bool poisoned() const;

  /// Arrives at the current phase without waiting for it to complete.
  void arrive();

  /// Removes the calling task from the parties. A pending arrival by this
  /// task in the current phase is revoked.
  void deregister();

  std::size_t parties() const;
  std::uint64_t phase() const;

 private:
  friend class BarrierDomain;
  CheckedBarrier(BarrierDomain* domain, wfg::ResId id)
      : domain_(domain), id_(id) {}

  // Pre: mu_ held. Records an arrival; releases the phase when complete.
  // Returns true when this arrival released the phase.
  bool arrive_locked(wfg::TaskUid uid);

  // Pre: mu_ held. Releases the phase: re-arms every arrived party as a
  // provider of the next phase and clears blocked parties' wait entries
  // (stale entries would poison later cycle checks).
  void release_phase_locked();

  BarrierDomain* domain_;
  const wfg::ResId id_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t parties_ = 0;                    // registered parties
  std::uint64_t phase_ = 0;
  std::vector<wfg::TaskUid> arrived_uids_;     // arrivals this phase
  std::vector<wfg::TaskUid> blocked_uids_;     // of those, the blocked ones
  bool poisoned_ = false;                      // guarded by mu_
  std::exception_ptr poison_cause_;            // guarded by mu_
};

/// Owns the shared resource graph and creates barriers bound to it.
class BarrierDomain {
 public:
  BarrierDomain() = default;
  BarrierDomain(const BarrierDomain&) = delete;
  BarrierDomain& operator=(const BarrierDomain&) = delete;

  /// Creates a barrier; the domain keeps ownership (stable addresses —
  /// shared_ptr storage so cancellation scopes can hold weak references).
  CheckedBarrier& create_barrier();

  const wfg::ResourceGraph& graph() const { return graph_; }
  std::uint64_t deadlocks_averted() const {
    return averted_.load(std::memory_order_relaxed);
  }

 private:
  friend class CheckedBarrier;

  wfg::ResourceGraph graph_;
  std::mutex barriers_mu_;
  std::vector<std::shared_ptr<CheckedBarrier>> barriers_;
  std::atomic<wfg::ResId> next_id_{1};
  std::atomic<std::uint64_t> averted_{0};
};

}  // namespace tj::runtime
