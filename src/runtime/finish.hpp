#pragma once
// The `finish` construct of X10/Habanero, built on Futures exactly as
// Section 2.3 describes: every task spawned through a FinishScope (at any
// nesting depth) registers its Future on a shared queue, and await() joins
// each queued Future until the queue stays empty. Because joins hit
// arbitrary descendants in arbitrary order, this is the pattern that is
// TJ-valid outright but nondeterministically violates Known Joins — the
// paper's argument for transitivity.
//
// FinishAccumulator extends it with the 'finish accumulator' reduction
// (Shirako et al., cited as [30]): values returned by the spawned tasks are
// combined with a user reducer as the joins complete.

#include <exception>
#include <functional>
#include <optional>
#include <utility>

#include "runtime/api.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/concurrent_queue.hpp"

namespace tj::runtime {

class FinishScope {
 public:
  /// Tag: construct with FinishScope(CancelSiblingsOnFault{}) to tie the
  /// finish scope to a CancellationScope — a fault in any spawned task then
  /// cancels its still-pending siblings, and await() drains the cancelled
  /// stragglers before rethrowing the *originating* fault.
  struct CancelSiblingsOnFault {};

  FinishScope() = default;
  explicit FinishScope(CancelSiblingsOnFault) : cscope_(std::in_place) {}
  FinishScope(const FinishScope&) = delete;
  FinishScope& operator=(const FinishScope&) = delete;
  /// Joining in the destructor would hide faults; call await() explicitly.
  ~FinishScope() = default;

  /// Forks `fn` as a child of the *current* task (which may itself be a task
  /// spawned through this scope — nesting is the point) and registers it.
  template <typename F>
  void spawn(F&& fn) {
    tasks_.push(async([fn = std::forward<F>(fn)]() mutable {
      fn();
    }));
  }

  /// Blocks until every task spawned through this scope (transitively
  /// registered) has terminated. Safe against tasks that keep spawning:
  /// each joined task registered its children before terminating, so an
  /// empty queue after draining means quiescence (Listing 1's invariant).
  ///
  /// Faults do not abandon the drain: every registered task is joined
  /// regardless (no stragglers escape the scope), then the first *origin*
  /// fault is rethrown — a non-CancelledError if one occurred, else the
  /// first CancelledError.
  void await() {
    std::exception_ptr first_fault;  // first non-cancellation error
    std::exception_ptr first_any;
    while (auto f = tasks_.poll()) {
      try {
        f->join();
      } catch (const CancelledError&) {
        if (!first_any) first_any = std::current_exception();
      } catch (...) {
        if (!first_fault) first_fault = std::current_exception();
        if (!first_any) first_any = first_fault;
      }
    }
    if (first_fault) std::rethrow_exception(first_fault);
    if (first_any) std::rethrow_exception(first_any);
  }

  std::size_t pending() const { return tasks_.size(); }

  /// The attached cancellation scope, when constructed with
  /// CancelSiblingsOnFault (nullptr otherwise).
  CancellationScope* cancellation() {
    return cscope_ ? &*cscope_ : nullptr;
  }

 private:
  // Declared before tasks_ so it outlives in-flight registrations; note the
  // scope must be constructed inside a task context (as FinishScope is).
  std::optional<CancellationScope> cscope_;
  ConcurrentQueue<Future<void>> tasks_;
};

/// finish-accumulator: spawned tasks return T; await() reduces all results.
template <typename T>
class FinishAccumulator {
 public:
  using Reducer = std::function<T(T, T)>;

  FinishAccumulator(T identity, Reducer reduce)
      : acc_(std::move(identity)), reduce_(std::move(reduce)) {}
  FinishAccumulator(const FinishAccumulator&) = delete;
  FinishAccumulator& operator=(const FinishAccumulator&) = delete;

  template <typename F>
  void spawn(F&& fn) {
    tasks_.push(async(std::forward<F>(fn)));
  }

  /// Joins every registered task (in arrival order — arbitrary descendants)
  /// and returns the reduction of their results.
  T await() {
    while (auto f = tasks_.poll()) {
      acc_ = reduce_(std::move(acc_), f->get());
    }
    return acc_;
  }

 private:
  ConcurrentQueue<Future<T>> tasks_;
  T acc_;
  Reducer reduce_;
};

}  // namespace tj::runtime
