#include "runtime/watchdog.hpp"

#include <cstdio>
#include <sstream>
#include <utility>

#include "core/guarded.hpp"
#include "core/policy_ids.hpp"
#include "obs/recorder.hpp"
#include "runtime/governor.hpp"
#include "runtime/recovery.hpp"

namespace tj::runtime {

namespace {
/// Events quoted per stalled wait in a report.
constexpr std::size_t kRecentEvents = 8;
}  // namespace

std::string StallReport::to_string() const {
  std::ostringstream os;
  os << "[tj watchdog] " << stalled.size() << " stalled wait(s)";
  if (!policy_name.empty()) {
    os << " under policy " << policy_name << " (id "
       << static_cast<unsigned>(policy_id) << ")";
  }
  if (degradation_level > 0) {
    os << " [degraded: level " << degradation_level << ", "
       << degradation_history << "]";
  }
  if (async_mode) {
    os << " [async detector: "
       << (detector_running ? "running" : "DEAD")
       << (detector_failed_over ? ", FAILED OVER" : "")
       << ", lag=" << detector_lag_events
       << " events, lost=" << detector_events_lost
       << ", recovered=" << cycles_recovered << "]";
  }
  os << ":\n";
  for (const BlockedJoin& b : stalled) {
    os << "  task " << b.waiter << " blocked "
       << (b.on_promise ? "awaiting promise " : "joining task ") << b.target
       << " for " << b.blocked_for.count() << "ms (gate verdict: " << b.verdict
       << ")\n";
    for (const std::string& ev : b.recent_events) {
      os << "    " << ev << '\n';
    }
  }
  if (cycles.empty()) {
    os << "  waits-for graph: acyclic (stall is external to the runtime's "
          "join structure)\n";
  } else {
    for (const auto& cycle : cycles) {
      os << "  waits-for cycle:";
      for (const std::uint64_t n : cycle) os << ' ' << n;
      os << '\n';
    }
  }
  for (const std::string& r : recovery_history) {
    os << "  recovered: " << r << '\n';
  }
  return os.str();
}

JoinWatchdog::JoinWatchdog(WatchdogConfig cfg, const core::JoinGate& gate,
                           obs::FlightRecorder* rec,
                           const ResourceGovernor* governor,
                           const RecoverySupervisor* recovery)
    : cfg_(std::move(cfg)),
      gate_(gate),
      rec_(rec),
      governor_(governor),
      recovery_(recovery) {
  thread_ = std::thread([this] { poll_loop(); });
}

JoinWatchdog::~JoinWatchdog() {
  {
    std::scoped_lock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
}

void JoinWatchdog::blocked(std::uint64_t waiter, std::uint64_t target,
                           bool on_promise, const char* verdict) {
  std::scoped_lock lock(mu_);
  blocked_[waiter] =
      Entry{target, on_promise, verdict, std::chrono::steady_clock::now()};
}

void JoinWatchdog::unblocked(std::uint64_t waiter) {
  std::scoped_lock lock(mu_);
  blocked_.erase(waiter);
}

std::uint64_t JoinWatchdog::stalls_reported() const {
  std::scoped_lock lock(mu_);
  return stalls_reported_;
}

std::vector<JoinWatchdog::BlockedWait> JoinWatchdog::blocked_now() const {
  const auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mu_);
  std::vector<BlockedWait> out;
  out.reserve(blocked_.size());
  for (const auto& [waiter, e] : blocked_) {
    BlockedWait w;
    w.waiter = waiter;
    w.target = e.target;
    w.on_promise = e.on_promise;
    w.verdict = e.verdict;
    w.blocked_for =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - e.since);
    out.push_back(w);
  }
  return out;
}

void JoinWatchdog::poll_loop() {
  std::unique_lock lock(mu_);
  const auto poll = std::chrono::milliseconds(cfg_.poll_ms);
  const auto stall = std::chrono::milliseconds(cfg_.stall_ms);
  while (!stop_) {
    cv_.wait_for(lock, poll, [this] { return stop_; });
    if (stop_) return;
    const auto now = std::chrono::steady_clock::now();
    StallReport report;
    for (auto& [waiter, e] : blocked_) {
      const auto blocked_for =
          std::chrono::duration_cast<std::chrono::milliseconds>(now - e.since);
      if (blocked_for < stall || e.reported) continue;
      e.reported = true;
      report.stalled.push_back(
          {waiter, e.target, e.on_promise, e.verdict, blocked_for, {}});
    }
    if (report.stalled.empty()) continue;
    ++stalls_reported_;
    // The scan and the callback run unlocked: the gate has its own
    // synchronisation, and a slow callback must not delay join bookkeeping.
    lock.unlock();
    // active_kind(), not kind(): when a governor downgraded the ladder, the
    // report must name the policy whose verdicts admitted these waits.
    report.policy_name = std::string(core::to_string(gate_.active_kind()));
    report.policy_id = static_cast<std::uint8_t>(gate_.active_kind());
    if (governor_ != nullptr) {
      report.degradation_level = governor_->level();
      report.degradation_history = governor_->history_string();
    }
    if (recovery_ != nullptr) {
      const RecoveryStatus rs = recovery_->status();
      report.async_mode = true;
      report.detector_running = rs.detector.running;
      report.detector_failed_over = rs.detector.failed_over;
      report.detector_lag_events = rs.detector.lag_events;
      report.detector_events_lost = rs.detector.events_lost;
      report.cycles_recovered = rs.cycles_recovered;
      for (const RecoveryStatus::Incident& inc : rs.recent) {
        std::ostringstream line;
        line << "victim " << inc.victim << " ("
             << (inc.on_promise ? "awaiting promise " : "joining ")
             << inc.waited_on << ", cycle len " << inc.cycle_len;
        if (inc.tenant != 0) {
          line << ", tenant " << static_cast<unsigned>(inc.tenant) - 1;
        }
        line << ")";
        report.recovery_history.push_back(line.str());
      }
    }
    report.cycles = gate_.graph().find_all_cycles();
    cycles_found_.fetch_add(report.cycles.size(), std::memory_order_relaxed);
    if (rec_ != nullptr) {
      // Quote the stalled parties' recent history: what the waiter (and,
      // for task joins, the target) last did before going quiet.
      for (StallReport::BlockedJoin& b : report.stalled) {
        for (const obs::Event& e : rec_->recent(b.waiter, kRecentEvents)) {
          b.recent_events.push_back(obs::to_string(e));
        }
        if (!b.on_promise) {
          for (const obs::Event& e : rec_->recent(b.target, kRecentEvents)) {
            b.recent_events.push_back(obs::to_string(e));
          }
        }
      }
      rec_->metrics().stall_reports.fetch_add(1, std::memory_order_relaxed);
      obs::Event e;
      e.kind = obs::EventKind::WatchdogStall;
      e.actor = report.stalled.front().waiter;
      e.payload = report.stalled.size();
      rec_->emit(e);
    }
    if (cfg_.on_stall) {
      cfg_.on_stall(report);
    } else {
      const std::string text = report.to_string();
      std::fwrite(text.data(), 1, text.size(), stderr);
    }
    lock.lock();
  }
}

}  // namespace tj::runtime
