#pragma once
// A small sequentially-consistent FIFO queue (the paper's examples use
// Java's ConcurrentLinkedQueue; Listing 1 and NQueens collect Futures in
// one). Mutex-based: contention on it is part of the modeled workloads, not
// of the verifier overhead being measured.

#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace tj::runtime {

template <typename T>
class ConcurrentQueue {
 public:
  void push(T value) {
    std::scoped_lock lock(mu_);
    items_.push_back(std::move(value));
  }

  /// Pops the oldest element, or nullopt when currently empty.
  std::optional<T> poll() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.front());
    items_.pop_front();
    return out;
  }

  /// Pops the newest element, or nullopt when currently empty. Consumers
  /// that mix poll()/poll_back() observe elements "in any order" — the
  /// NQueens root uses this to join arbitrary descendants.
  std::optional<T> poll_back() {
    std::scoped_lock lock(mu_);
    if (items_.empty()) return std::nullopt;
    T out = std::move(items_.back());
    items_.pop_back();
    return out;
  }

  bool empty() const {
    std::scoped_lock lock(mu_);
    return items_.empty();
  }

  std::size_t size() const {
    std::scoped_lock lock(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
};

}  // namespace tj::runtime
