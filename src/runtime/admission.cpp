#include "runtime/admission.hpp"

#include <utility>

#include "core/guarded.hpp"
#include "obs/recorder.hpp"

namespace tj::runtime {

AdmissionController::AdmissionController(
    std::vector<TenantBudget> tenants, core::JoinGate& gate,
    std::function<std::size_t()> live_tasks,
    std::function<std::size_t()> verifier_bytes, obs::FlightRecorder* rec)
    : budgets_(std::move(tenants)),
      gate_(gate),
      live_tasks_(std::move(live_tasks)),
      verifier_bytes_(std::move(verifier_bytes)),
      rec_(rec),
      states_(budgets_.size()) {
  if (budgets_.empty()) {
    throw UsageError("admission: at least one tenant budget is required");
  }
}

std::size_t AdmissionController::tenant_index(std::string_view name) const {
  for (std::size_t i = 0; i < budgets_.size(); ++i) {
    if (budgets_[i].name == name) return i;
  }
  throw UsageError("admission: unknown tenant \"" + std::string(name) + "\"");
}

const TenantBudget& AdmissionController::budget(std::size_t tenant) const {
  if (tenant >= budgets_.size()) {
    throw UsageError("admission: tenant index out of range");
  }
  return budgets_[tenant];
}

AdmissionCause AdmissionController::evaluate_locked(
    std::size_t tenant, std::chrono::steady_clock::time_point now) const {
  const TenantBudget& b = budgets_[tenant];
  const State& s = states_[tenant];
  if (now < s.cooldown_until) return AdmissionCause::Cooldown;
  if (b.max_in_flight != 0 && s.in_flight >= b.max_in_flight) {
    return AdmissionCause::InFlightBudget;
  }
  if (b.max_live_tasks != 0 && live_tasks_() >= b.max_live_tasks) {
    return AdmissionCause::LiveTaskBudget;
  }
  if (b.max_verifier_bytes != 0 &&
      verifier_bytes_() >= b.max_verifier_bytes) {
    return AdmissionCause::VerifierBytesBudget;
  }
  return AdmissionCause::None;
}

AdmissionController::Verdict AdmissionController::try_admit(
    std::size_t tenant) {
  if (tenant >= budgets_.size()) {
    throw UsageError("admission: tenant index out of range");
  }
  const auto now = std::chrono::steady_clock::now();
  Verdict v;
  std::size_t in_flight_now = 0;
  {
    std::scoped_lock lock(mu_);
    State& s = states_[tenant];
    v.cause = evaluate_locked(tenant, now);
    v.admitted = v.cause == AdmissionCause::None;
    if (v.admitted) {
      ++s.in_flight;
      ++s.admitted;
    } else {
      ++s.shed;
      s.last_shed_cause = v.cause;
      // A budget shed arms the cooldown; a cooldown shed does not extend
      // it, so a retry storm drains the moment the window expires.
      if (v.cause != AdmissionCause::Cooldown &&
          budgets_[tenant].shed_cooldown_ms != 0) {
        s.cooldown_until =
            now + std::chrono::milliseconds(budgets_[tenant].shed_cooldown_ms);
      }
    }
    in_flight_now = s.in_flight;
  }
  // Fold the verdict into the gate's stats (the admission seam): the exact
  // invariant requests_checked == requests_admitted + requests_shed lives
  // with the join/await reconciliation counters.
  gate_.note_admission(v.admitted);
  if (rec_ != nullptr) {
    auto& m = rec_->metrics();
    (v.admitted ? m.requests_admitted : m.requests_shed)
        .fetch_add(1, std::memory_order_relaxed);
    if (!v.admitted) {
      obs::Event e;
      e.kind = obs::EventKind::AdmissionShed;
      e.actor = tenant;
      e.detail = static_cast<std::uint8_t>(v.cause);
      e.payload = in_flight_now;
      rec_->emit(e);
    }
  }
  return v;
}

void AdmissionController::admit_or_throw(std::size_t tenant) {
  const Verdict v = try_admit(tenant);
  if (!v.admitted) {
    throw AdmissionRejected(
        "request shed by admission control: tenant \"" +
            budgets_[tenant].name + "\" over budget (" +
            std::string(to_string(v.cause)) + ")",
        budgets_[tenant].name, v.cause);
  }
}

void AdmissionController::release(std::size_t tenant) {
  if (tenant >= budgets_.size()) {
    throw UsageError("admission: tenant index out of range");
  }
  std::scoped_lock lock(mu_);
  State& s = states_[tenant];
  if (s.in_flight == 0) {
    throw UsageError("admission: release without a matching admit for \"" +
                     budgets_[tenant].name + "\"");
  }
  --s.in_flight;
  ++s.released;
}

std::vector<AdmissionController::TenantSnapshot>
AdmissionController::snapshot() const {
  const auto now = std::chrono::steady_clock::now();
  std::vector<TenantSnapshot> out;
  out.reserve(budgets_.size());
  std::scoped_lock lock(mu_);
  for (std::size_t i = 0; i < budgets_.size(); ++i) {
    const State& s = states_[i];
    TenantSnapshot t;
    t.name = budgets_[i].name;
    t.in_flight = s.in_flight;
    t.admitted = s.admitted;
    t.shed = s.shed;
    t.released = s.released;
    t.last_shed_cause = s.last_shed_cause;
    t.in_cooldown = now < s.cooldown_until;
    t.current_verdict = evaluate_locked(i, now);
    out.push_back(std::move(t));
  }
  return out;
}

std::uint64_t AdmissionController::total_shed() const {
  std::scoped_lock lock(mu_);
  std::uint64_t total = 0;
  for (const State& s : states_) total += s.shed;
  return total;
}

}  // namespace tj::runtime
