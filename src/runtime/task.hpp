#pragma once
// Task records. A task is a unit of asynchronous work whose eventual result
// is exposed through a Future handle (Sec. 2.2's program model). The record
// carries the verifier's per-task policy state and a tiny lock-free state
// machine used both by the scheduler (claiming) and by joiners (waiting).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <memory>
#include <optional>
#include <thread>
#include <utility>

#include "core/verifier.hpp"
#include "obs/event.hpp"

namespace tj::runtime {

class Runtime;
class CancellationScope;

namespace detail {
class CancelState;
}

enum class TaskState : std::uint32_t {
  Queued,   ///< spawned, waiting in the scheduler queue
  Running,  ///< claimed by a worker (or inlined by a cooperative joiner)
  Done,     ///< terminated; result or error available
};

class TaskBase : public std::enable_shared_from_this<TaskBase> {
 public:
  virtual ~TaskBase();  // releases the policy node (defined in runtime.cpp)
  TaskBase(const TaskBase&) = delete;
  TaskBase& operator=(const TaskBase&) = delete;

  bool done() const {
    return state_.load(std::memory_order_acquire) == TaskState::Done;
  }

  /// CAS Queued → Running; exactly one claimer wins a queued task.
  bool try_claim() {
    TaskState expected = TaskState::Queued;
    return state_.compare_exchange_strong(expected, TaskState::Running,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire);
  }

  /// Executes the body, captures any exception, runs the runtime's task-exit
  /// hook (which orphans promises the task still owns — it must complete
  /// *before* Done is published, see Runtime::task_exiting), then publishes
  /// Done and wakes every blocked joiner. Pre: this thread claimed the task.
  /// Defined in runtime.cpp.
  void run();

  /// Blocks the calling thread until the task is Done (futex-style wait).
  void wait_done() const {
    TaskState s = state_.load(std::memory_order_acquire);
    while (s != TaskState::Done) {
      state_.wait(s, std::memory_order_acquire);
      s = state_.load(std::memory_order_acquire);
    }
  }

  /// wait_done() variant for async (optimistic) mode: additionally wakes —
  /// and throws — when the recovery supervisor posts a wait-break on
  /// `waiter` (the task doing the joining; null for external threads, which
  /// cannot be deadlock victims). Parks on wake_seq_, NOT state_:
  /// std::atomic::wait only returns once the watched word differs from the
  /// captured value, so a break nudge (which changes no task state) would
  /// never wake a state_ waiter — the library re-parks it internally.
  /// Every wake source (Done publication and nudge_waiters) bumps wake_seq_,
  /// making each notify observable here.
  void wait_done_interruptible(TaskBase* waiter) const {
    if (waiter == nullptr) return wait_done();
    while (true) {
      waiter->throw_if_wait_broken();
      const std::uint32_t seq = wake_seq_.load(std::memory_order_acquire);
      if (state_.load(std::memory_order_acquire) == TaskState::Done) return;
      // A break or Done published after the seq read bumps wake_seq_, so the
      // wait below returns immediately — no lost-wakeup window.
      waiter->throw_if_wait_broken();
      wake_seq_.wait(seq, std::memory_order_acquire);
    }
  }

  /// Timed variant for deadline-aware joins: waits until Done or `timeout`
  /// elapses; true iff the task completed. std::atomic has no timed wait, so
  /// this polls with capped exponential backoff (50µs → 1ms) — the deadline
  /// is honoured to ~1ms granularity, which the join_for API documents. A
  /// task that is already Done returns immediately without sleeping.
  bool wait_done_for(std::chrono::nanoseconds timeout) const {
    return wait_done_for_interruptible(timeout, nullptr);
  }

  /// Timed wait that also honours a recovery wait-break on `waiter` (see
  /// wait_done_interruptible). The poll loop wakes at least every ~1ms, so
  /// a posted break is observed without any extra notification. `waiter`
  /// may be null (plain timed wait).
  bool wait_done_for_interruptible(std::chrono::nanoseconds timeout,
                                   TaskBase* waiter) const {
    if (state_.load(std::memory_order_acquire) == TaskState::Done) return true;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    auto nap = std::chrono::microseconds(50);
    while (true) {
      if (waiter != nullptr) waiter->throw_if_wait_broken();
      if (state_.load(std::memory_order_acquire) == TaskState::Done) {
        return true;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        return state_.load(std::memory_order_acquire) == TaskState::Done;
      }
      const auto remaining =
          std::chrono::duration_cast<std::chrono::microseconds>(deadline - now);
      std::this_thread::sleep_for(nap < remaining ? nap : remaining);
      if (nap < std::chrono::microseconds(1000)) nap *= 2;
    }
  }

  TaskState state() const { return state_.load(std::memory_order_acquire); }

  /// Rethrows the task's captured exception, if any. Pre: done().
  void rethrow_if_error() const {
    if (error_) std::rethrow_exception(error_);
  }
  bool failed() const { return static_cast<bool>(error_); }

  std::uint64_t uid() const { return uid_; }
  Runtime* runtime() const { return rt_; }
  core::PolicyNode* policy_node() const { return pnode_; }

  /// Request attribution inherited from the spawning thread's RequestScope
  /// (or the parent task's context) at registration; all-zero when the
  /// recorder is off or no scope was installed. The scheduler re-installs it
  /// as the thread-local context around every execution of this task.
  const obs::RequestContext& request_context() const { return req_ctx_; }

  /// True when this task has been asked to cancel (its cancellation scope
  /// cancelled). Cooperative: the runtime checks it at spawn/join/await
  /// checkpoints; long-running bodies may poll it. Defined in runtime.cpp.
  bool cancel_requested() const;

  /// The cancellation scope this task currently spawns into (the scope that
  /// owns it, unless a nested CancellationScope is open). Internal plumbing
  /// for the barrier/scope integration.
  const std::shared_ptr<detail::CancelState>& cancel_scope() const {
    return scope_;
  }

  // --- recovery wait-break (async detection mode) -------------------------
  // The recovery supervisor terminates a deadlock victim's wait by posting
  // an exception here and nudging whatever the victim is parked on; the
  // victim's interruptible wait loop consumes and rethrows it. At most one
  // break is live at a time (a second post while one is pending is dropped —
  // the victim is already doomed). Stale breaks (posted but never consumed
  // because the wait completed normally) are cleared by the supervisor's
  // registry unregister path, so they can never kill a later wait.

  /// Posts `ep` as this task's pending wait-break. True iff it was installed
  /// (false: one is already pending). Any thread.
  bool post_wait_break(std::exception_ptr ep) {
    auto* fresh = new std::exception_ptr(std::move(ep));
    std::exception_ptr* expected = nullptr;
    if (wait_break_.compare_exchange_strong(expected, fresh,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
      return true;
    }
    delete fresh;
    return false;
  }

  /// Consumes and rethrows the pending wait-break, if any.
  void throw_if_wait_broken() {
    if (wait_break_.load(std::memory_order_acquire) == nullptr) return;
    std::exception_ptr* p =
        wait_break_.exchange(nullptr, std::memory_order_acq_rel);
    if (p == nullptr) return;
    std::exception_ptr ep = *p;
    delete p;
    std::rethrow_exception(ep);
  }

  /// Discards the pending wait-break, if any (supervisor unregister path).
  void clear_wait_break() {
    delete wait_break_.exchange(nullptr, std::memory_order_acq_rel);
  }

  /// True iff a wait-break is pending (supervisor repost bookkeeping).
  bool wait_break_pending() const {
    return wait_break_.load(std::memory_order_acquire) != nullptr;
  }

  /// Spuriously wakes every thread parked in a wait_done* on THIS task so
  /// an interruptible waiter rechecks its wait-break. Any thread.
  void nudge_waiters() { bump_wake_seq(); }

 protected:
  TaskBase() = default;
  virtual void execute() = 0;

 private:
  friend class Runtime;
  friend class CancellationScope;
  friend class detail::CancelState;

  /// Delivers a cancellation request. Sets the cooperative flag; when the
  /// task is still Queued, additionally wins the claim CAS and
  /// force-completes it with CancelledError (returning true) so its joiners
  /// fail fast instead of waiting for a body that will never run.
  /// Defined in runtime.cpp.
  bool deliver_cancel(const std::exception_ptr& cause);

  /// The scope's originating fault, if any. Defined in runtime.cpp.
  std::exception_ptr cancel_cause() const;

  /// Advances the interruptible-wait generation and wakes its parkers.
  /// Called by every wake source: Done publication, cancel completion, and
  /// nudge_waiters().
  void bump_wake_seq() const {
    wake_seq_.fetch_add(1, std::memory_order_release);
    wake_seq_.notify_all();
  }

  std::uint64_t uid_ = 0;
  Runtime* rt_ = nullptr;
  core::PolicyNode* pnode_ = nullptr;  // owned by the runtime's verifier
  std::atomic<TaskState> state_{TaskState::Queued};
  // Interruptible-wait futex word; see wait_done_interruptible(). Counts
  // wake events, never read for its value — only for change detection.
  mutable std::atomic<std::uint32_t> wake_seq_{0};
  std::exception_ptr error_;
  std::shared_ptr<detail::CancelState> scope_;  // set at registration
  std::atomic<bool> cancel_requested_{false};
  obs::RequestContext req_ctx_;  // set at registration, immutable after
  // Pending recovery wait-break; heap cell so posting stays lock-free
  // (std::exception_ptr itself is not atomic-able). Freed by the consumer,
  // clear_wait_break(), or the destructor.
  std::atomic<std::exception_ptr*> wait_break_{nullptr};
};

/// Typed task: adds the result slot.
template <typename T>
class Task : public TaskBase {
 public:
  /// Pre: done() and !failed().
  const T& result() const { return *result_; }

 protected:
  std::optional<T> result_;
};

template <>
class Task<void> : public TaskBase {};

namespace detail {

/// Concrete task holding the user callable. The callable is destroyed right
/// after it runs so captured data (e.g. big closures) is not retained by a
/// long-lived Future.
template <typename T, typename F>
class TaskImpl final : public Task<T> {
 public:
  explicit TaskImpl(F fn) : fn_(std::move(fn)) {}

 private:
  void execute() override {
    this->result_.emplace((*fn_)());
    fn_.reset();
  }

  std::optional<F> fn_;
};

template <typename F>
class TaskImpl<void, F> final : public Task<void> {
 public:
  explicit TaskImpl(F fn) : fn_(std::move(fn)) {}

 private:
  void execute() override {
    (*fn_)();
    fn_.reset();
  }

  std::optional<F> fn_;
};

/// Performs an instrumented join of the *current* task on `target`
/// (policy check → fault or wait → completion bookkeeping).
/// Defined in runtime.cpp.
void join_current_on(TaskBase& target);

/// Deadline variant: same gate ruling, bounded wait. True iff the target
/// terminated (the join completed); false iff the deadline expired — the
/// wait edge is then withdrawn and no join bookkeeping (KJ-learn, trace
/// record) happens, so the caller may retry later. Defined in runtime.cpp.
bool join_current_on_for(TaskBase& target, std::chrono::nanoseconds timeout);

}  // namespace detail

}  // namespace tj::runtime
