#pragma once
// Structured cancellation. The paper's case for *avoidance* over detection
// is that a rejected join faults in the joining task, "giving the program
// the chance to recover" — a CancellationScope is what makes that recovery
// tractable: when a task spawned under the scope fails (including with
// DeadlockAvoidedError / PolicyViolationError), the scope
//
//   * force-completes still-queued sibling tasks with a CancelledError that
//     carries the originating fault (their Futures fail fast at get()),
//   * flags running siblings so their next join/await/spawn checkpoint
//     faults with CancelledError instead of blocking,
//   * poisons promises owned by cancelled tasks (awaiters fault with the
//     cause instead of a bare orphan deadlock), and
//   * poisons barriers its tasks registered with, releasing blocked peers.
//
// The scope *owner* is not cancelled: its joins keep working so it can
// drain the cancelled unit (observing the fault where the child's error is
// rethrown), and it is the natural recovery point — catch, optionally
// retry with a corrected structure. Spawning is the exception: a cancelled
// scope accepts no new work, owner included.
//
// Scopes nest: tasks spawned under a nested scope are cancelled when either
// that scope or an enclosing one cancels. Every Runtime has an implicit
// root scope; Config::cancel_on_fault makes it cancel on any task failure.

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <vector>

namespace tj::runtime {

class TaskBase;
class CheckedBarrier;
class Runtime;

namespace detail {

/// Shared cancellation state. Referenced by the RAII CancellationScope
/// handle, by every task spawned under it, and by child scopes — so it
/// outlives the handle if tasks are still draining.
class CancelState {
 public:
  /// `owner` is the task the scope was opened in (nullptr for a runtime's
  /// root scope): it is exempt from its *own* scope's cancellation at the
  /// join/await checkpoints, so it can drain member tasks and recover.
  CancelState(bool cancel_on_fault, std::shared_ptr<CancelState> parent,
              const TaskBase* owner = nullptr);

  /// True when this scope or any enclosing scope was cancelled.
  bool cancelled() const {
    for (const CancelState* s = this; s != nullptr; s = s->parent_.get()) {
      if (s->cancelled_.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// cancelled(), except scopes `task` itself opened do not count: the
  /// owner is the recovery point — its joins keep working after it (or a
  /// member fault) cancels the scope, so it can drain the cancelled unit
  /// instead of abandoning stack-held futures mid-flight. Enclosing scopes
  /// owned by other tasks still cancel it.
  bool cancelled_for(const TaskBase* task) const {
    for (const CancelState* s = this; s != nullptr; s = s->parent_.get()) {
      if (s->owner_ == task && task != nullptr) continue;
      if (s->cancelled_.load(std::memory_order_acquire)) return true;
    }
    return false;
  }

  /// The originating fault (this scope's, else the nearest cancelled
  /// ancestor's); nullptr when not cancelled or cancelled without a cause.
  std::exception_ptr cause() const;

  bool cancel_on_fault() const { return cancel_on_fault_; }

  /// Cancels the scope (idempotent): delivers cancellation to every tracked
  /// task, poisons tracked barriers, and recurses into child scopes.
  void cancel(std::exception_ptr cause);

  /// Reaction to a tracked task's uncaught failure (called from
  /// TaskBase::run): cancels iff cancel_on_fault.
  void on_task_fault(const std::exception_ptr& error);

  /// Registers a spawned task. Must be called after the task was submitted
  /// to the scheduler (cancellation force-completion pairs with submit's
  /// live-task accounting). Delivers cancellation immediately when the
  /// scope is already cancelled.
  void track_task(const std::shared_ptr<TaskBase>& t);

  /// Registers a nested scope for downward cancel propagation.
  void track_child(const std::shared_ptr<CancelState>& child);

  /// Registers a barrier some task of this scope registered with; poisoned
  /// on cancel so peers are never stranded.
  void track_barrier(const std::weak_ptr<CheckedBarrier>& b);

  /// Queued tasks this scope force-completed with CancelledError.
  std::uint64_t tasks_cancelled() const {
    return tasks_cancelled_.load(std::memory_order_relaxed);
  }

 private:
  const bool cancel_on_fault_;
  const std::shared_ptr<CancelState> parent_;
  const TaskBase* owner_ = nullptr;  // exempt at join/await checkpoints
  std::atomic<bool> cancelled_{false};
  std::atomic<std::uint64_t> tasks_cancelled_{0};
  mutable std::mutex mu_;
  std::exception_ptr cause_;                        // guarded by mu_
  std::vector<std::weak_ptr<TaskBase>> tasks_;      // guarded by mu_
  std::vector<std::weak_ptr<CancelState>> children_;  // guarded by mu_
  std::vector<std::weak_ptr<CheckedBarrier>> barriers_;  // guarded by mu_
};

}  // namespace detail

/// RAII cancellation scope, created inside a task. Tasks spawned by the
/// current task (and, transitively, by those tasks) while the scope is
/// alive belong to it. Destroying the handle does NOT cancel the scope —
/// it only stops new spawns from joining it; state lives on until the last
/// member task drains.
class CancellationScope {
 public:
  enum class OnFault : std::uint8_t {
    Cancel,  ///< any member task's uncaught failure cancels the scope
    Ignore,  ///< only explicit cancel() cancels
  };

  explicit CancellationScope(OnFault mode = OnFault::Cancel);
  ~CancellationScope();
  CancellationScope(const CancellationScope&) = delete;
  CancellationScope& operator=(const CancellationScope&) = delete;

  /// Cancels every member task (idempotent; safe from any thread).
  void cancel(std::exception_ptr cause = {}) { state_->cancel(std::move(cause)); }

  bool cancelled() const { return state_->cancelled(); }
  std::exception_ptr cause() const { return state_->cause(); }
  std::uint64_t tasks_cancelled() const { return state_->tasks_cancelled(); }

 private:
  TaskBase* task_;  // the task the scope was opened in
  std::shared_ptr<detail::CancelState> state_;
  std::shared_ptr<detail::CancelState> prev_;  // restored on destruction
};

/// True when the current task has been asked to cancel (cooperative flag —
/// long-running loops should poll this or call check_cancelled()).
/// False outside a task context.
bool cancel_requested();

/// Throws CancelledError (carrying the scope's originating fault) when the
/// current task has been asked to cancel; otherwise a no-op.
void check_cancelled();

}  // namespace tj::runtime
