#include "runtime/recovery.hpp"

#include <algorithm>
#include <unordered_set>

#include "core/witness.hpp"
#include "runtime/errors.hpp"
#include "runtime/promise.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

namespace {
constexpr std::size_t kRecentCap = 32;
}  // namespace

RecoverySupervisor::RecoverySupervisor(
    const core::DetectorConfig& cfg, core::JoinGate& gate,
    obs::FlightRecorder& rec, core::LadderVerifier* ladder,
    core::DetectorFaultHooks* faults,
    std::vector<std::uint32_t> tenant_priorities)
    : gate_(gate),
      rec_(rec),
      ladder_(ladder),
      tenant_priorities_(std::move(tenant_priorities)),
      detector_(cfg, gate, rec, *this, faults) {}

RecoverySupervisor::~RecoverySupervisor() { stop(); }

std::uint64_t RecoverySupervisor::register_wait(
    TaskBase* waiter, TaskBase* target_task,
    detail::PromiseStateBase* promise, std::uint8_t tenant) {
  WaitRecord r;
  r.uid = waiter->uid();
  r.waiter = waiter;
  r.target_task = target_task;
  r.promise = promise;
  r.tenant = tenant;
  r.tid = std::this_thread::get_id();
  r.since_ns = rec_.now_ns();
  std::scoped_lock lk(mu_);
  r.entry_id = next_entry_id_++;
  const std::uint64_t id = r.entry_id;
  waits_.insert_or_assign(r.uid, r);
  return id;
}

void RecoverySupervisor::unregister_wait(std::uint64_t waiter_uid,
                                         std::uint64_t entry_id) {
  std::scoped_lock lk(mu_);
  const auto it = waits_.find(waiter_uid);
  if (it == waits_.end() || it->second.entry_id != entry_id) return;
  if (it->second.broken) {
    // The victim's wait actually ended: this is the moment the deadlock is
    // resolved, so recovery latency = cycle formation → now.
    const std::uint64_t now = rec_.now_ns();
    const std::uint64_t formed = it->second.formation_ns;
    rec_.metrics().recovery_ns.record(now > formed ? now - formed : 0);
    // Retire incarnation keys that name this entry: the entry id is never
    // reused, so they can never recur — pruning keeps the dedup set bounded
    // by the number of cycles currently in flight (recoveries are rare, the
    // linear sweep is cold).
    const auto member = std::make_pair(waiter_uid, entry_id);
    for (auto k = counted_.begin(); k != counted_.end();) {
      if (std::find(k->begin(), k->end(), member) != k->end()) {
        k = counted_.erase(k);
      } else {
        ++k;
      }
    }
  }
  // Posts only happen under mu_ while the entry exists, so after this erase
  // no new break can target the waiter through this entry; clearing here
  // guarantees a stale (unconsumed) break never kills a later wait.
  it->second.waiter->clear_wait_break();
  waits_.erase(it);
}

void RecoverySupervisor::recover_cycle(const std::vector<wfg::NodeId>& cycle) {
  if (cycle.empty()) return;
  std::unordered_set<std::uint64_t> members(cycle.begin(), cycle.end());

  std::scoped_lock lk(mu_);

  // A cycle through a wait whose target has already settled is draining,
  // not deadlocked: the waiter just has not woken to withdraw its edge yet
  // (this happens right after a recovery, when the broken victim fulfilled
  // its obligation but the peer is still parked on the stale edge). Breaking
  // a member now would be a spurious kill of a wait that is about to
  // complete, so skip — a real cycle is re-reported by the next scan with
  // every target still pending.
  for (const auto& [uid, r] : waits_) {
    if (!members.contains(uid)) continue;
    if (r.promise != nullptr && r.promise->settled()) return;
    if (r.target_task != nullptr && r.target_task->done()) return;
  }

  // Per OS thread, the youngest registered wait is the one actually parked
  // (cooperative inlining stacks several frames' waits on one thread; only
  // the leaf can be woken). The WFG chain from any non-leaf frame runs
  // through its inlined child down to that leaf, so if a thread's frame is
  // on the cycle its leaf wait is too — breaking leaves is always enough.
  std::unordered_map<std::thread::id, const WaitRecord*> leaf;
  for (const auto& [uid, r] : waits_) {
    const WaitRecord*& slot = leaf[r.tid];
    if (slot == nullptr || r.entry_id > slot->entry_id) slot = &r;
  }
  const WaitRecord* victim = nullptr;
  for (const auto& [tid, r] : leaf) {
    if (!members.contains(r->uid)) continue;
    if (victim == nullptr) {
      victim = r;
      continue;
    }
    const std::uint32_t pr = priority_of(r->tenant);
    const std::uint32_t pv = priority_of(victim->tenant);
    // Lowest recovery priority dies first; ties fall to the youngest task.
    if (pr < pv || (pr == pv && r->uid > victim->uid)) victim = r;
  }
  if (victim == nullptr) return;  // no breakable member yet; next scan retries

  // One incident per cycle *incarnation*: the exact set of registered
  // (uid, entry id) member waits. Re-reports of a still-unbroken cycle match
  // the key and are not re-counted; the same tasks re-deadlocking through
  // fresh waits produce fresh entry ids and count again.
  IncarnationKey key;
  std::uint64_t formation_ns = 0;
  for (const auto& [uid, r] : waits_) {
    if (!members.contains(uid)) continue;
    key.emplace_back(uid, r.entry_id);
    formation_ns = std::max(formation_ns, r.since_ns);
  }
  std::sort(key.begin(), key.end());
  const bool first_report = counted_.insert(std::move(key)).second;

  // Rotate the confirmed cycle so the witness chain starts at the victim —
  // the same [waiter, target, …] orientation every synchronous WfgCycle
  // witness uses, so offline validation treats recoveries identically.
  const auto at =
      std::find(cycle.begin(), cycle.end(), victim->uid);
  std::vector<std::uint64_t> chain;
  chain.reserve(cycle.size());
  chain.insert(chain.end(), at, cycle.end());
  chain.insert(chain.end(), cycle.begin(), at);
  const wfg::NodeId next = chain.size() > 1 ? chain[1] : chain[0];
  const bool on_promise = wfg::is_promise_node(next);

  core::Witness w;
  w.kind = core::WitnessKind::WfgCycle;
  w.policy = core::PolicyChoice::Async;
  w.outcome = static_cast<std::uint8_t>(core::JoinDecision::FaultDeadlock);
  w.on_promise = on_promise;
  w.waiter = victim->uid;
  w.target = on_promise ? wfg::promise_uid_of(next) : next;
  w.chain = chain;

  WaitRecord& vic = waits_.at(victim->uid);
  if (!vic.broken) {
    vic.broken = true;
    vic.formation_ns = formation_ns;
  }
  if (first_report) {
    cycles_recovered_.fetch_add(1, std::memory_order_relaxed);
    rec_.metrics().cycles_recovered.fetch_add(1, std::memory_order_relaxed);
    gate_.note_cycle_recovered(w);
    obs::Event e;
    e.kind = obs::EventKind::CycleRecovered;
    e.actor = vic.uid;
    e.target = w.target;
    e.payload = cycle.size();
    e.detail = vic.tenant;
    e.tenant = vic.tenant;
    if (on_promise) e.flags = obs::kFlagPromise;
    rec_.emit(e);
    RecoveryStatus::Incident inc;
    inc.victim = vic.uid;
    inc.waited_on = w.target;
    inc.on_promise = on_promise;
    inc.cycle_len = static_cast<std::uint32_t>(cycle.size());
    inc.tenant = vic.tenant;
    inc.t_ns = rec_.now_ns();
    recent_.push_back(inc);
    if (recent_.size() > kRecentCap) {
      recent_.erase(recent_.begin());
    }
  }

  // Post (or re-post, if the victim consumed a break but is somehow still
  // registered) and nudge. The detector re-reports unbroken cycles every
  // scan, so a nudge that raced the victim's park is repaired on the next
  // tick — the check-before-park + re-nudge pair is what bounds recovery
  // latency without a wakeup-proof handshake.
  if (vic.waiter->post_wait_break(std::make_exception_ptr(DeadlockAvoidedError(
          on_promise
              ? "await aborted: a deadlock formed under optimistic "
                "verification; the recovery supervisor confirmed the cycle "
                "and chose this task as its victim"
              : "join aborted: a deadlock formed under optimistic "
                "verification; the recovery supervisor confirmed the cycle "
                "and chose this task as its victim",
          std::move(w))))) {
    breaks_posted_.fetch_add(1, std::memory_order_relaxed);
  }
  if (vic.promise != nullptr) {
    vic.promise->nudge_awaiters();
  } else if (vic.target_task != nullptr) {
    vic.target_task->nudge_waiters();
  }
}

void RecoverySupervisor::on_failover(obs::DetectorFailoverReason /*reason*/,
                                     std::uint64_t /*backlog*/) {
  // Monotone downgrade to the synchronous WFG-checked floor: in-flight
  // optimistic approvals simply complete and their edges drain; every join
  // ruled after this point is cycle-checked before blocking. The detector
  // keeps scanning for stale pre-failover cycles until stopped.
  if (ladder_ == nullptr) return;
  const core::PolicyChoice from = ladder_->kind();
  if (!ladder_->downgrade()) return;
  rec_.metrics().policy_downgrades.fetch_add(1, std::memory_order_relaxed);
  obs::Event e;
  e.kind = obs::EventKind::PolicyDowngrade;
  e.payload = ladder_->level();
  e.policy = static_cast<std::uint8_t>(ladder_->kind());
  e.detail = static_cast<std::uint8_t>(from);
  rec_.emit(e);
}

RecoveryStatus RecoverySupervisor::status() const {
  RecoveryStatus s;
  s.detector = detector_.status();
  s.cycles_recovered = cycles_recovered_.load(std::memory_order_relaxed);
  s.breaks_posted = breaks_posted_.load(std::memory_order_relaxed);
  std::scoped_lock lk(mu_);
  s.waits_registered = waits_.size();
  s.recent = recent_;
  return s;
}

RecoveryWaitGuard::RecoveryWaitGuard(RecoverySupervisor* sup, TaskBase* waiter,
                                     TaskBase* target_task,
                                     detail::PromiseStateBase* promise,
                                     std::uint8_t tenant)
    : sup_(waiter != nullptr ? sup : nullptr) {
  if (sup_ == nullptr) return;
  waiter_uid_ = waiter->uid();
  entry_id_ = sup_->register_wait(waiter, target_task, promise, tenant);
}

RecoveryWaitGuard::~RecoveryWaitGuard() {
  if (sup_ != nullptr) sup_->unregister_wait(waiter_uid_, entry_id_);
}

}  // namespace tj::runtime
