#pragma once
// Deterministic fault-injection layer (chaos testing). A seeded FaultPlan
// decides, at a handful of runtime seams, whether to perturb the execution:
//
//   * spurious policy rejections  — the join gate treats an approved join /
//     await as if the policy had rejected it (core/guarded.cpp hooks), so
//     the fallback path and its accounting get exercised on valid programs;
//   * delayed wakeups             — the Done/fulfilled notification is
//     published late, widening the race windows around joins;
//   * dropped wakeups             — the notification is suppressed entirely
//     and redelivered by the injector's repair thread a little later,
//     modelling a lost futex wake (waiters must survive it, not hang);
//   * fulfiller failures          — Promise::fulfill throws
//     InjectedFaultError *before* the value is published, so the obligation
//     machinery (orphaning, poisoning, awaiter faulting) has to recover;
//   * worker-thread death         — a pool worker exits at a task boundary
//     (never mid-task) and the scheduler must respawn a replacement.
//
// Decisions are functions of (seed, site, event-counter) only — replaying
// the same seed against the same schedule injects the same faults, and a
// seed sweep explores distinct fault schedules. seed == 0 disables the
// whole layer; every hook then short-circuits on one relaxed load.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/async_detect.hpp"
#include "core/guarded.hpp"

namespace tj::runtime {

/// What to inject and how often. Periods are 1-in-N odds per event at the
/// site (hashed, not strictly periodic); 0 disables the site.
struct FaultPlan {
  std::uint64_t seed = 0;  ///< 0 ⇒ fault injection fully disabled

  std::uint32_t join_rejection_period = 0;    ///< spurious join rejections
  std::uint32_t await_rejection_period = 0;   ///< spurious await rejections
  std::uint32_t delayed_wakeup_period = 0;    ///< late Done/fulfill notify
  std::uint32_t delay_us = 200;               ///< how late
  std::uint32_t dropped_wakeup_period = 0;    ///< suppressed Done notify
  std::uint32_t redelivery_ms = 2;            ///< repair-thread redelivery lag
  std::uint32_t fulfill_failure_period = 0;   ///< fulfill throws before value
  std::uint32_t worker_death_period = 0;      ///< worker exits at boundary
  std::uint32_t max_worker_deaths = 8;        ///< cap on respawn churn

  // Async-detector sites (consulted only when PolicyChoice::Async runs a
  // detector; dormant otherwise). Periods are per detector *tick*.
  std::uint32_t detector_delay_period = 0;    ///< stalled consumption ticks
  std::uint32_t detector_delay_us = 500;      ///< how long a stall lasts
  std::uint32_t detector_drop_period = 0;     ///< consumed-batch drops
  std::uint32_t detector_death_period = 0;    ///< detector-thread deaths
  std::uint32_t max_detector_deaths = 16;     ///< cap on detector churn

  bool enabled() const { return seed != 0; }

  /// The canonical chaos-test plan: every site armed at moderate odds.
  static FaultPlan chaos(std::uint64_t seed) {
    FaultPlan p;
    p.seed = seed == 0 ? 1 : seed;  // seed 0 would disarm the plan
    p.join_rejection_period = 5;
    p.await_rejection_period = 4;
    p.delayed_wakeup_period = 6;
    p.dropped_wakeup_period = 7;
    p.fulfill_failure_period = 6;
    p.worker_death_period = 9;
    return p;
  }

  /// chaos() plus the detector sites armed — the async-mode chaos plan.
  /// Delay/drop odds are moderate (the detector must mostly keep up, so
  /// recoveries — not failovers — dominate); deaths are rarer than the
  /// respawn budget so most runs exercise revival, some exercise failover.
  static FaultPlan chaos_detector(std::uint64_t seed) {
    FaultPlan p = chaos(seed);
    p.detector_delay_period = 16;
    p.detector_drop_period = 48;
    p.detector_death_period = 512;
    return p;
  }
};

/// Counts of faults actually injected (for test assertions).
struct FaultStats {
  std::uint64_t join_rejections = 0;
  std::uint64_t await_rejections = 0;
  std::uint64_t delayed_wakeups = 0;
  std::uint64_t dropped_wakeups = 0;
  std::uint64_t fulfill_failures = 0;
  std::uint64_t worker_deaths = 0;
  std::uint64_t detector_delays = 0;
  std::uint64_t detector_drops = 0;
  std::uint64_t detector_deaths = 0;

  std::uint64_t total() const {
    return join_rejections + await_rejections + delayed_wakeups +
           dropped_wakeups + fulfill_failures + worker_deaths +
           detector_delays + detector_drops + detector_deaths;
  }
};

/// The live injector: owned by the Runtime when its config carries an
/// enabled FaultPlan, consulted by the gate (as GateFaultHooks), the
/// scheduler (worker death) and the task/promise publication paths
/// (wakeup faults). Thread-safe; every decision is lock-free.
class FaultInjector final : public core::GateFaultHooks,
                            public core::DetectorFaultHooks {
 public:
  explicit FaultInjector(FaultPlan plan);
  ~FaultInjector() override;  // joins the repair thread

  /// Joins the repair thread and flushes undelivered wakeups inline on the
  /// calling thread. Idempotent; the destructor calls it. The Runtime calls
  /// it after quiescence, *before* its own members are torn down: a pending
  /// renotify closure can hold the last reference to a task whose promise
  /// release calls back into the runtime's promise-state map, so those
  /// closures must not be destroyed on the repair thread while the runtime
  /// destructor is already running.
  void shutdown();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // --- gate hooks (core::GateFaultHooks) ---
  bool inject_join_rejection() noexcept override;
  bool inject_await_rejection() noexcept override;

  // --- detector hooks (core::DetectorFaultHooks) ---
  std::uint64_t detector_delay_us() noexcept override;
  bool drop_detector_batch() noexcept override;
  bool kill_detector() noexcept override;

  // --- wakeup faults ---
  /// Called with the Done/fulfilled store already published. Either delays
  /// the calling thread briefly (delayed wakeup), or swallows this
  /// notification and schedules `renotify` on the repair thread (dropped
  /// wakeup, returns true — the caller must then NOT notify), or does
  /// nothing. `renotify` must be safe to run as long as the injector lives;
  /// the Runtime keeps the injector alive until quiescence.
  bool perturb_wakeup(std::function<void()> renotify);

  /// Delay-only variant for publication paths whose notification must not
  /// be dropped (promise settling inside the kFulfilling window): sleeps
  /// briefly when the plan's delayed-wakeup site fires.
  void maybe_delay_publication() noexcept;

  // --- fulfiller failure ---
  /// Throws InjectedFaultError when the plan says this fulfill should fail.
  /// Called before the fulfilment state machine advances, so a failed
  /// fulfill leaves the promise unfulfilled (and later orphaned/poisoned).
  void maybe_fail_fulfill();

  // --- worker death ---
  /// True ⇒ the calling worker should die at this task boundary (bounded by
  /// max_worker_deaths; the scheduler respawns a replacement).
  bool should_kill_worker() noexcept;

  const FaultPlan& plan() const { return plan_; }
  FaultStats stats() const;

 private:
  // Deterministic 1-in-period decision for the n-th event at `site`.
  bool decide(std::uint32_t period, std::uint32_t site,
              std::atomic<std::uint64_t>& counter,
              std::atomic<std::uint64_t>& injected) noexcept;

  void repair_loop();

  const FaultPlan plan_;

  std::atomic<std::uint64_t> join_events_{0};
  std::atomic<std::uint64_t> await_events_{0};
  std::atomic<std::uint64_t> wakeup_events_{0};
  std::atomic<std::uint64_t> publication_events_{0};
  std::atomic<std::uint64_t> fulfill_events_{0};
  std::atomic<std::uint64_t> boundary_events_{0};
  std::atomic<std::uint64_t> detector_tick_events_{0};
  std::atomic<std::uint64_t> detector_batch_events_{0};
  std::atomic<std::uint64_t> detector_life_events_{0};

  std::atomic<std::uint64_t> join_rejections_{0};
  std::atomic<std::uint64_t> await_rejections_{0};
  std::atomic<std::uint64_t> delayed_wakeups_{0};
  std::atomic<std::uint64_t> dropped_wakeups_{0};
  std::atomic<std::uint64_t> fulfill_failures_{0};
  std::atomic<std::uint64_t> worker_deaths_{0};
  std::atomic<std::uint64_t> detector_delays_{0};
  std::atomic<std::uint64_t> detector_drops_{0};
  std::atomic<std::uint64_t> detector_deaths_{0};

  // Repair thread: redelivers dropped wakeups after redelivery_ms. Started
  // lazily on the first drop; pending notifications are flushed on stop so
  // no wakeup is ever lost for good.
  struct PendingWake {
    std::chrono::steady_clock::time_point due;
    std::function<void()> renotify;
  };
  std::mutex repair_mu_;
  std::condition_variable repair_cv_;
  std::vector<PendingWake> pending_;  // guarded by repair_mu_
  bool repair_started_ = false;       // guarded by repair_mu_
  bool stop_ = false;                 // guarded by repair_mu_
  std::thread repair_thread_;         // guarded by repair_mu_ (start only)
};

}  // namespace tj::runtime
