#include "runtime/runtime.hpp"

#include <thread>

#include "core/ladder.hpp"

namespace tj::runtime {

namespace {
// When the governor is enabled the configured policy is built as a
// degradation ladder (TJ-GT → ... → WFG-only) so the governor has levels to
// step down; policies with no ladder (None/CycleOnly) fall through to the
// plain verifier, as does the governor-off default.
std::unique_ptr<core::Verifier> build_verifier(const Config& cfg) {
  // Async mode ALWAYS builds its ladder, governor or not: the detector's
  // failover is a monotone downgrade to the synchronous WFG floor, which
  // needs a level to step down to.
  if (cfg.governor.enabled || cfg.policy == core::PolicyChoice::Async) {
    if (auto ladder = core::make_ladder_verifier(cfg.policy)) {
      return ladder;
    }
  }
  return core::make_verifier(cfg.policy);
}

// Cheap per-thread xorshift for chaos scheduling; distinct streams per
// thread via the TLS address, reproducibility comes from the seed salt.
bool chaos_roll(std::uint64_t seed) {
  thread_local std::uint64_t state = 0;
  if (state == 0) {
    state = seed ^ (reinterpret_cast<std::uintptr_t>(&state) | 1);
  }
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return (state & 7) == 0;
}

// Per-tenant recovery priorities for the async-mode victim picker, in
// admission tenant-index order (TenantBudget::priority).
std::vector<std::uint32_t> tenant_priorities(const Config& cfg) {
  std::vector<std::uint32_t> out;
  out.reserve(cfg.governor.tenants.size());
  for (const TenantBudget& t : cfg.governor.tenants) out.push_back(t.priority);
  return out;
}
}  // namespace

TaskBase::~TaskBase() {
  clear_wait_break();  // free an unconsumed recovery break's heap cell
  if (rt_ != nullptr && pnode_ != nullptr) {
    rt_->release_node(pnode_);
  }
}

void TaskBase::run() {
  obs::FlightRecorder* rec = rt_ != nullptr ? rt_->recorder() : nullptr;
  if (rec != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::TaskStart;
    e.actor = uid_;
    rec->emit(e);
  }
  if (cancel_requested_.load(std::memory_order_acquire)) {
    // Claimed after a cancellation request (e.g. a cooperative joiner won
    // the claim race against the canceller): honour the request, skip the
    // body.
    error_ = std::make_exception_ptr(CancelledError(
        "task cancelled before running (scope cancelled)", cancel_cause()));
  } else {
    try {
      execute();
    } catch (...) {
      error_ = std::current_exception();
    }
  }
  if (rt_ != nullptr) {
    // Must complete before the Done store: transfer_promise relies on
    // "done() implies the exit hook ran" (see Runtime::task_exiting).
    // The hook must never unwind into the claimer's frame — a cooperative
    // joiner inlining this task would otherwise see a foreign exception at
    // its join site and Done would never be published, stranding every
    // other joiner. Capture instead (the body's own error takes priority).
    try {
      rt_->task_exiting(*this);
    } catch (...) {
      if (!error_) error_ = std::current_exception();
    }
  }
  if (error_ && scope_ != nullptr) {
    // Structured recovery: a fault cancels the task's scope iff the scope
    // asked for it (CancellationScope OnFault::Cancel, or the root scope
    // under Config::cancel_on_fault).
    try {
      scope_->on_task_fault(error_);
    } catch (...) {
      // Cancellation delivery must not mask the original fault.
    }
  }
  if (rec != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::TaskEnd;
    e.actor = uid_;
    e.detail = error_ ? 1 : 0;
    rec->emit(e);
  }
  state_.store(TaskState::Done, std::memory_order_release);
  FaultInjector* inj = rt_ != nullptr ? rt_->injector_.get() : nullptr;
  if (inj == nullptr) {
    state_.notify_all();
    bump_wake_seq();
    return;
  }
  // Fault injection may delay this notification, or drop it entirely and
  // redeliver via the repair thread; the shared_ptr keeps the task alive
  // until the redelivery lands.
  auto self = shared_from_this();
  if (inj->perturb_wakeup([self] {
        self->state_.notify_all();
        self->bump_wake_seq();
      })) {
    if (rec != nullptr) {
      rec->metrics().faults_injected.fetch_add(1, std::memory_order_relaxed);
      obs::Event e;
      e.kind = obs::EventKind::FaultInjected;
      e.actor = uid_;
      e.detail = static_cast<std::uint8_t>(obs::InjectedFault::DroppedWakeup);
      rec->emit(e);
    }
  } else {
    state_.notify_all();
    bump_wake_seq();
  }
}

bool TaskBase::cancel_requested() const {
  if (cancel_requested_.load(std::memory_order_acquire)) return true;
  // Scopes this task itself opened are exempt: their owner is the recovery
  // point and must be able to drain the cancelled members (see
  // CancelState::cancelled_for).
  return scope_ != nullptr && scope_->cancelled_for(this);
}

std::exception_ptr TaskBase::cancel_cause() const {
  return scope_ != nullptr ? scope_->cause() : nullptr;
}

bool TaskBase::deliver_cancel(const std::exception_ptr& cause) {
  cancel_requested_.store(true, std::memory_order_release);
  if (!try_claim()) {
    return false;  // running (cooperative flag only) or already done
  }
  // Won the claim: the body never runs. Complete the task as cancelled so
  // joiners fail fast; the exit hook orphans-and-poisons any promise the
  // task already owned (e.g. via spawn_owning's pre-submit transfer).
  error_ = std::make_exception_ptr(
      CancelledError("task cancelled before running (scope cancelled)",
                     cause));
  if (rt_ != nullptr) {
    try {
      rt_->task_exiting(*this);
    } catch (...) {
    }
  }
  state_.store(TaskState::Done, std::memory_order_release);
  state_.notify_all();
  bump_wake_seq();
  if (rt_ != nullptr) {
    rt_->task_cancelled_done();  // pairs with submit's live-task increment
  }
  return true;
}

namespace detail {

void join_current_on(TaskBase& target) {
  Runtime* rt = target.runtime();
  if (rt == nullptr) {
    throw UsageError("join: task was never registered with a runtime");
  }
  rt->join(target);
}

bool join_current_on_for(TaskBase& target, std::chrono::nanoseconds timeout) {
  Runtime* rt = target.runtime();
  if (rt == nullptr) {
    throw UsageError("join: task was never registered with a runtime");
  }
  return rt->join_for(target, timeout);
}

PromiseStateBase::~PromiseStateBase() {
  if (rt_ != nullptr) {
    rt_->promise_state_released(*this);
  }
}

void PromiseStateBase::wait_settled_interruptible(TaskBase* waiter) const {
  if (waiter == nullptr) return wait_settled();
  // Parks on wake_seq_, NOT phase_: std::atomic::wait only returns once the
  // watched word differs from the captured value, so a recovery nudge (which
  // changes no promise phase) would never wake a phase_ waiter — the library
  // re-parks it internally and the posted break goes unobserved forever.
  // Every wake source (settlement and nudge_awaiters) bumps wake_seq_.
  while (true) {
    waiter->throw_if_wait_broken();
    const std::uint32_t seq = wake_seq_.load(std::memory_order_acquire);
    const std::uint32_t p = phase_.load(std::memory_order_acquire);
    if (p != kUnfulfilled && p != kFulfilling) return;
    // A break or settlement after the seq read bumps wake_seq_, so the wait
    // below returns immediately — no lost-wakeup window.
    waiter->throw_if_wait_broken();
    wake_seq_.wait(seq, std::memory_order_acquire);
  }
}

void await_promise_state(PromiseStateBase& s) {
  Runtime* rt = s.rt_;
  if (rt == nullptr) {
    throw UsageError("await: promise was never registered with a runtime");
  }
  rt->await_promise(s);
}

void fulfill_check(PromiseStateBase& s) {
  Runtime* rt = s.rt_;
  if (rt == nullptr) {
    throw UsageError("fulfill: promise was never registered with a runtime");
  }
  TaskBase& cur = current_task();
  if (cur.runtime() != rt) {
    throw UsageError("fulfill: current task belongs to another runtime");
  }
  switch (rt->gate_.enter_fulfill(s.pnode_, cur.uid())) {
    case core::FulfillDecision::AlreadySettled:
      throw UsageError("promise already settled");
    case core::FulfillDecision::FaultNotOwner:
      throw PolicyViolationError(
          "fulfill rejected: the calling task does not own the promise");
    case core::FulfillDecision::Proceed:
      break;
  }
  if (rt->injector_ != nullptr) {
    // Chaos: the fulfiller dies *before* the value is published — the
    // promise stays unfulfilled and is orphaned (and poisoned with this
    // fault) when the owner's exit hook runs.
    rt->injector_->maybe_fail_fulfill();
  }
}

void fulfill_record(PromiseStateBase& s) {
  Runtime* rt = s.rt_;
  if (rt->injector_ != nullptr) {
    // Chaos: stretch the kFulfilling window so awaiters race settling.
    rt->injector_->maybe_delay_publication();
  }
  if (rt->cfg_.record_trace) {
    rt->record(trace::fulfill(
        static_cast<trace::TaskId>(current_task().uid()),
        static_cast<trace::PromiseId>(s.uid_)));
  }
  if (rt->recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::PromiseFulfill;
    e.actor = current_task().uid();
    e.target = s.uid_;
    e.flags = obs::kFlagPromise;
    rt->recorder_->emit(e);
  }
}

void fulfill_committed(PromiseStateBase& s) {
  s.rt_->gate_.fulfill_committed(s.pnode_);
}

void transfer_promise_state(PromiseStateBase& s, const TaskBase& to) {
  Runtime* rt = s.rt_;
  if (rt == nullptr) {
    throw UsageError("transfer: promise was never registered with a runtime");
  }
  rt->transfer_promise(s, to);
}

}  // namespace detail

Runtime::Runtime(Config cfg)
    : cfg_(Config::normalize(std::move(cfg))),
      verifier_(build_verifier(cfg_)),
      owp_(core::make_ownership_verifier(cfg_.promise_policy)),
      recorder_(cfg_.obs.enabled
                    ? std::make_unique<obs::FlightRecorder>(cfg_.obs)
                    : nullptr),
      injector_(cfg_.fault_plan.enabled()
                    ? std::make_unique<FaultInjector>(cfg_.fault_plan)
                    : nullptr),
      gate_(cfg_.policy, verifier_.get(), cfg_.fault, owp_.get(),
            injector_.get(), recorder_.get()),
      sched_(cfg_.scheduler, cfg_.effective_workers(), cfg_.max_threads,
             injector_.get(), recorder_.get()),
      root_scope_(std::make_shared<detail::CancelState>(cfg_.cancel_on_fault,
                                                        nullptr)),
      governor_(cfg_.governor.enabled
                    ? std::make_unique<ResourceGovernor>(
                          cfg_.governor,
                          dynamic_cast<core::LadderVerifier*>(verifier_.get()),
                          &gate_.graph(),
                          [this] { return sched_.live_tasks(); },
                          recorder_.get())
                    : nullptr),
      recovery_(cfg_.policy == core::PolicyChoice::Async
                    ? std::make_unique<RecoverySupervisor>(
                          cfg_.detector, gate_, *recorder_,
                          dynamic_cast<core::LadderVerifier*>(verifier_.get()),
                          injector_.get(), tenant_priorities(cfg_))
                    : nullptr),
      watchdog_(cfg_.watchdog.enabled
                    ? std::make_unique<JoinWatchdog>(cfg_.watchdog, gate_,
                                                     recorder_.get(),
                                                     governor_.get(),
                                                     recovery_.get())
                    : nullptr),
      admission_(!cfg_.governor.tenants.empty()
                     ? std::make_unique<AdmissionController>(
                           cfg_.governor.tenants, gate_,
                           [this] { return sched_.live_tasks(); },
                           [this] { return policy_bytes(); },
                           recorder_.get())
                     : nullptr) {
  if (recovery_ != nullptr) recovery_->start();
}

Runtime::~Runtime() {
  // All spawned tasks must finish before the scheduler can be torn down;
  // root() already quiesces, this covers error paths.
  sched_.quiesce();
  // Stop the injector's repair thread while the promise-state map is still
  // alive: an undelivered-wake closure can hold the last reference to a
  // task whose promise release erases from that map (members are destroyed
  // in reverse order, and promises_ is declared after injector_).
  if (injector_ != nullptr) injector_->shutdown();
}

void Runtime::claim_root() {
  if (current_task_or_null() != nullptr) {
    throw UsageError("root: already inside a task context");
  }
  bool expected = false;
  if (!root_claimed_.compare_exchange_strong(expected, true)) {
    throw UsageError("root: a runtime hosts exactly one root task");
  }
}

void Runtime::register_task(TaskBase& t, const TaskBase* parent) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  t.uid_ = next_uid_.fetch_add(1, std::memory_order_relaxed);
  t.rt_ = this;
  // Tasks inherit the spawning task's (innermost) cancellation scope; the
  // root task lives in the runtime's root scope.
  t.scope_ = parent != nullptr ? parent->scope_ : root_scope_;
  if (verifier_ != nullptr) {
    t.pnode_ =
        verifier_->add_child(parent != nullptr ? parent->policy_node()
                                               : nullptr);
  }
  if (cfg_.record_trace) {
    const auto id = static_cast<trace::TaskId>(t.uid_);
    record(parent != nullptr
               ? trace::fork(static_cast<trace::TaskId>(parent->uid()), id)
               : trace::init(id));
  }
  if (recorder_ != nullptr) {
    // Request spans: the child inherits the spawning thread's context — the
    // parent task's (installed by CurrentTaskGuard) or an explicit
    // RequestScope at a service's submission point. Recorder-off runs skip
    // even the TLS read so the hot spawn path is untouched.
    t.req_ctx_ = obs::tls_request_context();
    obs::Event e;
    if (parent != nullptr) {
      e.kind = obs::EventKind::TaskSpawn;
      e.actor = parent->uid();
      e.target = t.uid_;
    } else {
      e.kind = obs::EventKind::TaskInit;
      e.actor = t.uid_;
    }
    recorder_->emit(e);
  }
}

void Runtime::record(const trace::Action& a) {
  std::scoped_lock lock(trace_mu_);
  recorded_.push_back(a);
}

trace::Trace Runtime::recorded_trace() const {
  std::scoped_lock lock(trace_mu_);
  return trace::Trace(recorded_);
}

std::uint64_t Runtime::trace_position() const {
  std::scoped_lock lock(trace_mu_);
  return recorded_.size();
}

void Runtime::release_node(core::PolicyNode* node) {
  if (verifier_ != nullptr) {
    verifier_->release(node);
  }
}

void Runtime::throw_if_cancelled(const TaskBase& t) {
  // Unlike the join/await checkpoints, spawning is NOT owner-exempt: a
  // cancelled scope accepts no new work from anyone — the owner drains and
  // recovers *outside* the failed scope.
  if (t.cancel_requested() ||
      (t.scope_ != nullptr && t.scope_->cancelled())) {
    throw CancelledError("spawn abandoned: the spawning task was cancelled",
                         t.cancel_cause());
  }
}

void Runtime::track_in_scope(const std::shared_ptr<TaskBase>& t) {
  if (t->scope_ != nullptr) {
    t->scope_->track_task(t);
  }
}

void Runtime::task_cancelled_done() { sched_.note_task_done(); }

void Runtime::cancel_all(std::exception_ptr cause) {
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::CancelAll;
    const TaskBase* cur = current_task_or_null();
    e.actor = cur != nullptr ? cur->uid() : 0;
    recorder_->emit(e);
  }
  root_scope_->cancel(std::move(cause));
}

void Runtime::join(TaskBase& target) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  TaskBase& cur = current_task();
  if (cur.runtime() != this) {
    throw UsageError("join: current task belongs to another runtime");
  }
  if (cur.cancel_requested()) {
    // Cancellation checkpoint: a cancelled task must not start a new
    // blocking wait.
    throw CancelledError("join abandoned: the joining task was cancelled",
                         cur.cancel_cause());
  }
  const bool was_done = target.done();
  core::Witness why;
  const core::JoinDecision d =
      gate_.enter_join(cur.uid(), target.uid(), cur.policy_node(),
                       target.policy_node(), was_done, &why);
  switch (d) {
    case core::JoinDecision::FaultDeadlock:
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw DeadlockAvoidedError(
          "join aborted: blocking would create a deadlock cycle",
          std::move(why));
    case core::JoinDecision::FaultPolicy:
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw PolicyViolationError("join rejected by the active policy",
                                 std::move(why));
    case core::JoinDecision::Proceed:
    case core::JoinDecision::ProceedFalsePositive:
      break;
  }
  // Async mode: the wait is breakable — registered with the recovery
  // supervisor for the guard's whole lifetime, which outlives the catch
  // block's leave_join so a broken victim's WFG edge is withdrawn *before*
  // its registry entry disappears (the detector then cannot re-confirm the
  // broken cycle against a registry that no longer names the victim).
  RecoveryWaitGuard rguard(!was_done ? recovery_.get() : nullptr, &cur,
                           &target, nullptr, cur.request_context().tenant);
  try {
    if (!was_done) {
      WatchdogBlockGuard guard(
          watchdog_.get(), cur.uid(), target.uid(), /*on_promise=*/false,
          d == core::JoinDecision::ProceedFalsePositive
              ? "policy-rejected, fallback-cleared"
              : "policy-approved");
      const std::uint64_t t0 =
          recorder_ != nullptr ? recorder_->now_ns() : 0;
      sched_.join_wait(target);
      if (recorder_ != nullptr) {
        const std::uint64_t blocked = recorder_->now_ns() - t0;
        recorder_->metrics().blocked_join_ns.record(blocked);
        obs::Event e;
        e.kind = obs::EventKind::JoinBlocked;
        e.actor = cur.uid();
        e.target = target.uid();
        e.payload = blocked;
        recorder_->emit(e);
      }
    }
  } catch (...) {
    gate_.leave_join(cur.uid(), target.uid(), cur.policy_node(),
                     target.policy_node(), /*completed=*/false);
    throw;
  }
  gate_.leave_join(cur.uid(), target.uid(), cur.policy_node(),
                   target.policy_node(), /*completed=*/true);
  if (cfg_.record_trace) {
    record(trace::join(static_cast<trace::TaskId>(cur.uid()),
                       static_cast<trace::TaskId>(target.uid())));
  }
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::JoinComplete;
    e.actor = cur.uid();
    e.target = target.uid();
    recorder_->emit(e);
  }
}

bool Runtime::join_for(TaskBase& target, std::chrono::nanoseconds timeout) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  TaskBase& cur = current_task();
  if (cur.runtime() != this) {
    throw UsageError("join: current task belongs to another runtime");
  }
  if (cur.cancel_requested()) {
    throw CancelledError("join abandoned: the joining task was cancelled",
                         cur.cancel_cause());
  }
  const bool was_done = target.done();
  // Same gate ruling as join(): a deadline does not weaken the policy — a
  // join the policy would reject still faults rather than timing out.
  core::Witness why;
  const core::JoinDecision d =
      gate_.enter_join(cur.uid(), target.uid(), cur.policy_node(),
                       target.policy_node(), was_done, &why);
  switch (d) {
    case core::JoinDecision::FaultDeadlock:
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw DeadlockAvoidedError(
          "join aborted: blocking would create a deadlock cycle",
          std::move(why));
    case core::JoinDecision::FaultPolicy:
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw PolicyViolationError("join rejected by the active policy",
                                 std::move(why));
    case core::JoinDecision::Proceed:
    case core::JoinDecision::ProceedFalsePositive:
      break;
  }
  bool completed = was_done;
  RecoveryWaitGuard rguard(!was_done ? recovery_.get() : nullptr, &cur,
                           &target, nullptr, cur.request_context().tenant);
  try {
    if (!was_done) {
      WatchdogBlockGuard guard(
          watchdog_.get(), cur.uid(), target.uid(), /*on_promise=*/false,
          d == core::JoinDecision::ProceedFalsePositive
              ? "policy-rejected, fallback-cleared"
              : "policy-approved");
      const std::uint64_t t0 =
          recorder_ != nullptr ? recorder_->now_ns() : 0;
      completed = sched_.join_wait_for(target, timeout);
      if (recorder_ != nullptr && completed) {
        const std::uint64_t blocked = recorder_->now_ns() - t0;
        recorder_->metrics().blocked_join_ns.record(blocked);
        obs::Event e;
        e.kind = obs::EventKind::JoinBlocked;
        e.actor = cur.uid();
        e.target = target.uid();
        e.payload = blocked;
        recorder_->emit(e);
      }
    }
  } catch (...) {
    gate_.leave_join(cur.uid(), target.uid(), cur.policy_node(),
                     target.policy_node(), /*completed=*/false);
    throw;
  }
  if (!completed) {
    // Deadline expired: withdraw the wait edge. No KJ-learn, no trace join
    // record — from the formalism's view this join never happened, so a
    // later retry is a fresh join.
    gate_.leave_join(cur.uid(), target.uid(), cur.policy_node(),
                     target.policy_node(), /*completed=*/false);
    if (recorder_ != nullptr) {
      recorder_->metrics().join_timeouts.fetch_add(1,
                                                   std::memory_order_relaxed);
      obs::Event e;
      e.kind = obs::EventKind::JoinTimeout;
      e.actor = cur.uid();
      e.target = target.uid();
      e.payload = static_cast<std::uint64_t>(timeout.count());
      recorder_->emit(e);
    }
    return false;
  }
  gate_.leave_join(cur.uid(), target.uid(), cur.policy_node(),
                   target.policy_node(), /*completed=*/true);
  if (cfg_.record_trace) {
    record(trace::join(static_cast<trace::TaskId>(cur.uid()),
                       static_cast<trace::TaskId>(target.uid())));
  }
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::JoinComplete;
    e.actor = cur.uid();
    e.target = target.uid();
    recorder_->emit(e);
  }
  return true;
}

void Runtime::run_inline(TaskBase& t) {
  // Spawn-backpressure path: the caller claimed the task; run it here, in
  // the caller's context, exactly as a cooperative joiner would inline it.
  // The task was never submitted, so no live-task accounting applies.
  const TaskBase* cur = current_task_or_null();
  if (recorder_ != nullptr) {
    recorder_->metrics().spawn_inlines.fetch_add(1, std::memory_order_relaxed);
    obs::Event e;
    e.kind = obs::EventKind::SpawnInlined;
    e.actor = cur != nullptr ? cur->uid() : 0;
    e.target = t.uid();
    e.payload = sched_.live_tasks();
    recorder_->emit(e);
  }
  // Unlike a cooperative inline-claim (whose join registered a wait edge
  // before claiming), a spawn-time inline has no edge yet — register one,
  // or a child that blocks on work only this suspended caller's
  // continuation can do (e.g. awaiting a sibling promise the caller has
  // not yet routed) hangs on an acyclic-looking graph. With the edge, the
  // gate's fallback sees the cycle and faults the child's wait instead.
  const bool edged =
      cur != nullptr && gate_.inline_run_begin(cur->uid(), t.uid());
  {
    detail::CurrentTaskGuard guard(&t);
    t.run();
  }
  if (edged) {
    gate_.inline_run_end(cur->uid());
  }
}

void Runtime::init_promise_state(detail::PromiseStateBase& s) {
  TaskBase& cur = current_task();
  if (cur.runtime() != this) {
    throw UsageError("make_promise: current task belongs to another runtime");
  }
  s.uid_ = next_promise_uid_.fetch_add(1, std::memory_order_relaxed);
  s.rt_ = this;
  s.pnode_ = gate_.promise_made(cur.uid(), s.uid_);
  {
    std::scoped_lock lock(promises_mu_);
    promises_.emplace(s.uid_, &s);
  }
  if (cfg_.record_trace) {
    record(trace::make(static_cast<trace::TaskId>(cur.uid()),
                       static_cast<trace::PromiseId>(s.uid_)));
  }
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::PromiseMake;
    e.actor = cur.uid();
    e.target = s.uid_;
    e.flags = obs::kFlagPromise;
    recorder_->emit(e);
  }
}

void Runtime::await_promise(detail::PromiseStateBase& s) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  TaskBase& cur = current_task();
  if (cur.runtime() != this) {
    throw UsageError("await: current task belongs to another runtime");
  }
  if (cur.cancel_requested()) {
    throw CancelledError("await abandoned: the awaiting task was cancelled",
                         cur.cancel_cause());
  }
  const bool was_fulfilled = s.fulfilled();
  core::Witness why;
  const core::JoinDecision d =
      gate_.enter_await(cur.uid(), s.pnode_, was_fulfilled, &why);
  switch (d) {
    case core::JoinDecision::FaultDeadlock:
      if (auto cause = s.poison_cause(); cause) {
        // The owner was cancelled (or died of a fault) before we blocked:
        // surface the originating fault, not a bare orphan deadlock.
        throw CancelledError(
            "await aborted: the promise was poisoned by cancellation",
            cause);
      }
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw DeadlockAvoidedError(
          "await aborted: the promise is orphaned or blocking on it would "
          "create a deadlock cycle",
          std::move(why));
    case core::JoinDecision::FaultPolicy:
      if (cfg_.record_trace) why.trace_pos = trace_position();
      throw PolicyViolationError("await rejected by the ownership policy",
                                 std::move(why));
    case core::JoinDecision::Proceed:
    case core::JoinDecision::ProceedFalsePositive:
      break;
  }
  if (!was_fulfilled) {
    const std::uint64_t t0 = recorder_ != nullptr ? recorder_->now_ns() : 0;
    // Breakable-wait bracket, outliving the catch block's leave_await (see
    // the join() comment for the ordering argument).
    RecoveryWaitGuard rguard(recovery_.get(), &cur, nullptr, &s,
                             cur.request_context().tenant);
    try {
      // Awaits cannot be helped by cooperative inlining (no known fulfiller
      // task to run), so both scheduler modes treat them as a blocking
      // region and may grow a compensation worker.
      detail::BlockingRegionGuard region(sched_);
      WatchdogBlockGuard guard(
          watchdog_.get(), cur.uid(), s.uid_, /*on_promise=*/true,
          d == core::JoinDecision::ProceedFalsePositive
              ? "owp-rejected, fallback-cleared"
              : "owp-approved");
      s.wait_settled_interruptible(&cur);
    } catch (...) {
      gate_.leave_await(cur.uid());
      throw;
    }
    gate_.leave_await(cur.uid());
    if (recorder_ != nullptr) {
      const std::uint64_t blocked = recorder_->now_ns() - t0;
      recorder_->metrics().blocked_await_ns.record(blocked);
      obs::Event e;
      e.kind = obs::EventKind::AwaitBlocked;
      e.actor = cur.uid();
      e.target = s.uid_;
      e.payload = blocked;
      e.flags = obs::kFlagPromise;
      recorder_->emit(e);
    }
  }
  if (!s.fulfilled()) {
    if (auto cause = s.poison_cause(); cause) {
      throw CancelledError(
          "await aborted: the promise was poisoned while blocking (its "
          "owner was cancelled)",
          cause);
    }
    // Woken by orphaning, not by a value: the promise's owner terminated
    // while we were blocked. Certain deadlock without the wake-up.
    throw DeadlockAvoidedError(
        "await aborted: the promise was orphaned while blocking (its owner "
        "terminated without fulfilling it)");
  }
  if (cfg_.record_trace) {
    record(trace::await(static_cast<trace::TaskId>(cur.uid()),
                        static_cast<trace::PromiseId>(s.uid_)));
  }
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::AwaitComplete;
    e.actor = cur.uid();
    e.target = s.uid_;
    e.flags = obs::kFlagPromise;
    recorder_->emit(e);
  }
}

void Runtime::transfer_promise(detail::PromiseStateBase& s,
                               const TaskBase& to) {
  TaskBase& cur = current_task();
  if (cur.runtime() != this || to.runtime() != this) {
    throw UsageError("transfer: task belongs to another runtime");
  }
  if (to.done()) {
    throw UsageError("transfer: receiving task already terminated");
  }
  switch (gate_.promise_transfer(s.pnode_, cur.uid(), to.uid())) {
    case core::TransferDecision::FaultNotOwner:
      throw PolicyViolationError(
          "transfer rejected: the calling task does not own the promise");
    case core::TransferDecision::FaultSettled:
      throw UsageError("transfer: promise already settled");
    case core::TransferDecision::FaultTargetDead:
      throw UsageError("transfer: receiving task already terminated");
    case core::TransferDecision::FaultWouldDeadlock:
      throw DeadlockAvoidedError(
          "transfer aborted: the new owner transitively waits on this "
          "promise");
    case core::TransferDecision::OrphanedReceiverDead:
      // Ownership moved, but the receiver died in the handoff window: the
      // promise is orphaned exactly as if the receiver had died owning it.
      if (to.error_) s.set_poison(to.error_);
      s.try_orphan();
      break;
    case core::TransferDecision::Ok:
      break;
  }
  if (cfg_.record_trace) {
    record(trace::transfer(static_cast<trace::TaskId>(cur.uid()),
                           static_cast<trace::TaskId>(to.uid()),
                           static_cast<trace::PromiseId>(s.uid_)));
  }
  if (recorder_ != nullptr) {
    obs::Event e;
    e.kind = obs::EventKind::PromiseTransfer;
    e.actor = cur.uid();
    e.target = to.uid();
    e.payload = s.uid_;
    e.flags = obs::kFlagPromise;
    recorder_->emit(e);
  }
}

void Runtime::promise_state_released(detail::PromiseStateBase& s) {
  {
    std::scoped_lock lock(promises_mu_);
    promises_.erase(s.uid_);
  }
  gate_.promise_released(s.pnode_);
}

void Runtime::task_exiting(TaskBase& t) {
  const std::vector<std::uint64_t> orphans = gate_.task_exited(t.uid());
  if (!orphans.empty()) {
    // A task that died of a fault (or was cancelled) poisons the promises
    // it leaves behind: awaiters observe the originating fault instead of a
    // bare orphan deadlock.
    orphan_states(orphans, t.error_);
  }
}

void Runtime::orphan_states(const std::vector<std::uint64_t>& promise_uids,
                            const std::exception_ptr& cause) {
  std::scoped_lock lock(promises_mu_);
  for (const std::uint64_t uid : promise_uids) {
    const auto it = promises_.find(uid);
    if (it == promises_.end()) continue;  // last handle already dropped
    // Poison is written before the orphan CAS publishes (release), so any
    // reader that observed kOrphaned sees the cause.
    if (cause) it->second->set_poison(cause);
    it->second->try_orphan();  // loses to an in-flight (non-owner) fulfill
  }
}

}  // namespace tj::runtime
