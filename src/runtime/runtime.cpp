#include "runtime/runtime.hpp"

#include <thread>

namespace tj::runtime {

namespace {
// Cheap per-thread xorshift for chaos scheduling; distinct streams per
// thread via the TLS address, reproducibility comes from the seed salt.
bool chaos_roll(std::uint64_t seed) {
  thread_local std::uint64_t state = 0;
  if (state == 0) {
    state = seed ^ (reinterpret_cast<std::uintptr_t>(&state) | 1);
  }
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  return (state & 7) == 0;
}
}  // namespace

TaskBase::~TaskBase() {
  if (rt_ != nullptr && pnode_ != nullptr) {
    rt_->release_node(pnode_);
  }
}

namespace detail {

void join_current_on(TaskBase& target) {
  Runtime* rt = target.runtime();
  if (rt == nullptr) {
    throw UsageError("join: task was never registered with a runtime");
  }
  rt->join(target);
}

}  // namespace detail

Runtime::Runtime(Config cfg)
    : cfg_(cfg),
      verifier_(core::make_verifier(cfg.policy)),
      gate_(cfg.policy, verifier_.get(), cfg.fault),
      sched_(cfg.scheduler, cfg.effective_workers(), cfg.max_threads) {}

Runtime::~Runtime() {
  // All spawned tasks must finish before the scheduler can be torn down;
  // root() already quiesces, this covers error paths.
  sched_.quiesce();
}

void Runtime::claim_root() {
  if (current_task_or_null() != nullptr) {
    throw UsageError("root: already inside a task context");
  }
  bool expected = false;
  if (!root_claimed_.compare_exchange_strong(expected, true)) {
    throw UsageError("root: a runtime hosts exactly one root task");
  }
}

void Runtime::register_task(TaskBase& t, const TaskBase* parent) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  t.uid_ = next_uid_.fetch_add(1, std::memory_order_relaxed);
  t.rt_ = this;
  if (verifier_ != nullptr) {
    t.pnode_ =
        verifier_->add_child(parent != nullptr ? parent->policy_node()
                                               : nullptr);
  }
  if (cfg_.record_trace) {
    const auto id = static_cast<trace::TaskId>(t.uid_);
    record(parent != nullptr
               ? trace::fork(static_cast<trace::TaskId>(parent->uid()), id)
               : trace::init(id));
  }
}

void Runtime::record(const trace::Action& a) {
  std::scoped_lock lock(trace_mu_);
  recorded_.push_back(a);
}

trace::Trace Runtime::recorded_trace() const {
  std::scoped_lock lock(trace_mu_);
  return trace::Trace(recorded_);
}

void Runtime::release_node(core::PolicyNode* node) {
  if (verifier_ != nullptr) {
    verifier_->release(node);
  }
}

void Runtime::join(TaskBase& target) {
  if (cfg_.chaos_seed != 0 && chaos_roll(cfg_.chaos_seed)) {
    std::this_thread::yield();
  }
  TaskBase& cur = current_task();
  if (cur.runtime() != this) {
    throw UsageError("join: current task belongs to another runtime");
  }
  const bool was_done = target.done();
  const core::JoinDecision d =
      gate_.enter_join(cur.uid(), target.uid(), cur.policy_node(),
                       target.policy_node(), was_done);
  switch (d) {
    case core::JoinDecision::FaultDeadlock:
      throw DeadlockAvoidedError(
          "join aborted: blocking would create a deadlock cycle");
    case core::JoinDecision::FaultPolicy:
      throw PolicyViolationError("join rejected by the active policy");
    case core::JoinDecision::Proceed:
    case core::JoinDecision::ProceedFalsePositive:
      break;
  }
  try {
    if (!was_done) {
      sched_.join_wait(target);
    }
  } catch (...) {
    gate_.leave_join(cur.uid(), cur.policy_node(), target.policy_node(),
                     /*completed=*/false);
    throw;
  }
  gate_.leave_join(cur.uid(), cur.policy_node(), target.policy_node(),
                   /*completed=*/true);
  if (cfg_.record_trace) {
    record(trace::join(static_cast<trace::TaskId>(cur.uid()),
                       static_cast<trace::TaskId>(target.uid())));
  }
}

}  // namespace tj::runtime
