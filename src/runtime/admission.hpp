#pragma once
// Per-tenant admission control: the front door of the service scenario.
// A long-lived runtime serving open-loop traffic cannot let overload express
// itself as unbounded queueing — by the time the policy ladder degrades, the
// tail latency of *every* tenant is already gone. Admission control sheds
// excess work per tenant before anything is spawned, so a noisy tenant
// exhausts its own budget while quiet tenants keep their latency.
//
// This is the outermost rung of the runtime's admission ladder:
//
//   1. shed         — AdmissionController rejects the request outright
//                     (AdmissionRejected; nothing was spawned, retry later)
//   2. backpressure — GovernorConfig::spawn_inline_watermark runs admitted
//                     work's children inline instead of growing the pool
//   3. downgrade    — the governor steps the policy ladder toward WFG-only
//
// Each rung is strictly cheaper for the system than the next: a shed costs
// one mutex acquisition and touches no verifier state at all.
//
// Budgets live in GovernorConfig::tenants, but — like the spawn-inline
// watermark — admission is *inline* machinery enforced on every try_admit
// regardless of GovernorConfig::enabled; the background governor's poll loop
// never makes admission decisions.
//
// Accounting contract (the reconciliation invariant tests assert): every
// try_admit reports its verdict to the JoinGate, so the gate's stats obey
//   requests_checked == requests_admitted + requests_shed   (exactly),
// and within the controller, per tenant,
//   admitted == released + in_flight                        (exactly).
// A shed emits an obs AdmissionShed event and bumps the requests_shed
// metrics counter; admits are counted but not per-event recorded (they are
// the common case and would swamp the ring at service rates).

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "runtime/errors.hpp"

namespace tj::core {
class JoinGate;
}
namespace tj::obs {
class FlightRecorder;
}

namespace tj::runtime {

/// One tenant's admission budgets. A budget of 0 means "unlimited"; a tenant
/// with all budgets 0 is still tracked (in-flight counts, snapshots) but
/// never shed.
struct TenantBudget {
  std::string name;
  /// Recovery priority: when the async detector must pick a deadlock victim
  /// and the cycle spans tenants, lower-priority tenants are sacrificed
  /// first (0 = lowest = victim first). Gold tenants set this high so a
  /// noisy tenant's cycle participant dies instead of theirs. Ties fall to
  /// the youngest participant.
  std::uint32_t priority = 0;
  /// Concurrent admitted-but-not-released requests.
  std::size_t max_in_flight = 0;
  /// Runtime-wide live (submitted, unfinished) tasks at admission time —
  /// a crude but cheap proxy for "the machine is saturated".
  std::size_t max_live_tasks = 0;
  /// Verifier-state footprint (policy bytes) at admission time: under
  /// memory pressure the tenant is shed before the governor must degrade.
  std::size_t max_verifier_bytes = 0;
  /// After a budget shed the tenant keeps shedding for this long
  /// (hysteresis: a saturated tenant's retry storm is answered from the
  /// cooldown check alone, without re-probing live tasks or verifier
  /// bytes). 0 = re-evaluate budgets on every attempt.
  std::uint32_t shed_cooldown_ms = 0;
};

/// The admit/shed decision point. Owned by the Runtime when
/// GovernorConfig::tenants is non-empty; thread-safe (one short-lived mutex,
/// never on the join/await hot path — only request entry/exit touch it).
class AdmissionController {
 public:
  struct Verdict {
    bool admitted = false;
    AdmissionCause cause = AdmissionCause::None;  ///< None iff admitted
  };

  /// Moment-in-time view of one tenant, for RuntimeSnapshot/SIGUSR1 dumps.
  struct TenantSnapshot {
    std::string name;
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t released = 0;
    AdmissionCause last_shed_cause = AdmissionCause::None;
    bool in_cooldown = false;
    /// What try_admit would rule right now (None = would admit). Computed
    /// without committing: counters and cooldowns are not touched.
    AdmissionCause current_verdict = AdmissionCause::None;
  };

  /// `gate` receives every verdict (requests_* stats); `live_tasks` /
  /// `verifier_bytes` supply the shared-pressure signals; `rec` (nullable)
  /// receives AdmissionShed events and the requests_admitted/requests_shed
  /// counters.
  AdmissionController(std::vector<TenantBudget> tenants, core::JoinGate& gate,
                      std::function<std::size_t()> live_tasks,
                      std::function<std::size_t()> verifier_bytes,
                      obs::FlightRecorder* rec = nullptr);

  std::size_t tenant_count() const { return budgets_.size(); }
  /// Index of the tenant named `name`; throws UsageError when unknown.
  std::size_t tenant_index(std::string_view name) const;
  const TenantBudget& budget(std::size_t tenant) const;

  /// The admit/shed ruling. On admit the tenant's in-flight count is up by
  /// one and the caller MUST eventually call release(tenant) — completion,
  /// timeout and abandonment all count as release. Throws UsageError on a
  /// bad tenant index.
  Verdict try_admit(std::size_t tenant);

  /// try_admit, but a shed throws AdmissionRejected carrying the tenant
  /// name and the tripped budget.
  void admit_or_throw(std::size_t tenant);

  /// Returns an admitted request's in-flight slot. Throws UsageError when
  /// the tenant has no request in flight (a release/admit pairing bug).
  void release(std::size_t tenant);

  std::vector<TenantSnapshot> snapshot() const;

  /// Sheds across all tenants (cheap sum; tests and progress lines).
  std::uint64_t total_shed() const;

 private:
  struct State {
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t released = 0;
    AdmissionCause last_shed_cause = AdmissionCause::None;
    /// Cooldown expiry; default-constructed (epoch) = no cooldown armed.
    std::chrono::steady_clock::time_point cooldown_until{};
  };

  /// The would-be ruling for `tenant` right now (pre: mu_ held).
  AdmissionCause evaluate_locked(std::size_t tenant,
                                 std::chrono::steady_clock::time_point now)
      const;

  const std::vector<TenantBudget> budgets_;
  core::JoinGate& gate_;
  const std::function<std::size_t()> live_tasks_;
  const std::function<std::size_t()> verifier_bytes_;
  obs::FlightRecorder* const rec_;  // not owned; nullptr ⇒ recording off

  mutable std::mutex mu_;
  std::vector<State> states_;  // guarded by mu_
};

}  // namespace tj::runtime
