#pragma once
// Runtime: owns the verifier, the join gate (policy + cycle-detection
// fallback) and the scheduler; implements the instrumented Fork and Join of
// Algorithm 1. One root task per Runtime (the trace's init action); every
// other task is created by async() from within a task context.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <unordered_map>
#include <utility>

#include "core/guarded.hpp"
#include "core/owp.hpp"
#include "trace/trace.hpp"
#include "core/verifier.hpp"
#include "runtime/admission.hpp"
#include "runtime/cancellation.hpp"
#include "runtime/config.hpp"
#include "runtime/errors.hpp"
#include "runtime/fault_injection.hpp"
#include "runtime/future.hpp"
#include "runtime/governor.hpp"
#include "runtime/promise.hpp"
#include "runtime/recovery.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"
#include "runtime/watchdog.hpp"

namespace tj::runtime {

class Runtime {
 public:
  explicit Runtime(Config cfg = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `f` as the root task on the calling thread (the init action),
  /// returns its result after every spawned task has terminated. A Runtime
  /// hosts exactly one root; create a fresh Runtime per program run.
  template <typename F>
  auto root(F&& f) {
    using T = std::invoke_result_t<std::decay_t<F>>;
    claim_root();
    auto task = std::make_shared<detail::TaskImpl<T, std::decay_t<F>>>(
        std::forward<F>(f));
    register_task(*task, nullptr);  // the init action
    task->try_claim();
    {
      detail::CurrentTaskGuard guard(task.get());
      task->run();
    }
    sched_.quiesce();
    task->rethrow_if_error();
    if constexpr (!std::is_void_v<T>) {
      return task->result();
    }
  }

  /// Forks a task executing `fn` as a child of the current task
  /// (Algorithm 1 Fork). Used through the free function async().
  template <typename F>
  auto spawn(F&& fn) {
    using T = std::invoke_result_t<std::decay_t<F>>;
    TaskBase& parent = current_task();
    if (parent.runtime() != this) {
      throw UsageError("spawn: current task belongs to another runtime");
    }
    throw_if_cancelled(parent);  // spawn is a cancellation checkpoint
    auto task = std::make_shared<detail::TaskImpl<T, std::decay_t<F>>>(
        std::forward<F>(fn));
    register_task(*task, &parent);
    std::shared_ptr<Task<T>> handle = task;
    if (spawn_backpressure()) {
      // Admission control: past the live-task watermark the child runs
      // inline in the caller instead of growing the queue/pool. Claimed
      // BEFORE it is visible to the cancellation scope, so a concurrent
      // cancel sees it Running and cannot force-complete it (whose
      // accounting assumes a submitted task).
      task->try_claim();
      track_in_scope(handle);
      run_inline(*handle);
      return Future<T>(std::move(handle));
    }
    sched_.submit(std::move(task));
    // Tracked only after submit: a cancellation-driven force-complete must
    // pair with submit's live-task accounting.
    track_in_scope(handle);
    return Future<T>(std::move(handle));
  }

  /// Instrumented join of the current task on `target` (Algorithm 1 Join):
  /// policy check, fault or wait, then completion bookkeeping.
  void join(TaskBase& target);

  /// Deadline-aware join: same gate ruling as join(), but the wait is
  /// bounded by `timeout`. True iff the target terminated (full join
  /// bookkeeping ran); false iff the deadline expired — the wait edge is
  /// withdrawn, no KJ-learn / trace join is recorded (the join did not
  /// happen), and the caller may retry. Used through Future::join_for.
  bool join_for(TaskBase& target, std::chrono::nanoseconds timeout);

  /// Makes a promise owned by the current task. Used through make_promise()
  /// in api.hpp.
  template <typename T>
  Promise<T> make_promise() {
    auto state = std::make_shared<detail::PromiseState<T>>();
    init_promise_state(*state);
    return Promise<T>(std::move(state));
  }

  /// Forks `fn` as a child of the current task and transfers ownership of
  /// `p` to it before it can run — the canonical "spawn the task obligated
  /// to fulfill this promise" idiom, with no window in which the child could
  /// terminate before receiving ownership.
  template <typename T, typename F>
  auto spawn_owning(const Promise<T>& p, F&& fn) {
    using R = std::invoke_result_t<std::decay_t<F>>;
    TaskBase& parent = current_task();
    if (parent.runtime() != this) {
      throw UsageError("spawn: current task belongs to another runtime");
    }
    throw_if_cancelled(parent);  // spawn is a cancellation checkpoint
    auto task = std::make_shared<detail::TaskImpl<R, std::decay_t<F>>>(
        std::forward<F>(fn));
    register_task(*task, &parent);
    p.transfer_to(*task);  // child not yet submitted: cannot race its exit
    std::shared_ptr<Task<R>> handle = task;
    // No spawn-backpressure inlining here, ever: a promise-owning child's
    // obligation structure routinely needs the parent's *continuation* (the
    // canonical cross-owned pair spawns the second owner right after this
    // call), and inlining serializes child-before-continuation. run_inline's
    // WFG edge would detect the resulting cycle and fault the child — sound,
    // but needlessly faulting the textbook idiom; submitting sidesteps it.
    sched_.submit(std::move(task));
    track_in_scope(handle);
    return Future<R>(std::move(handle));
  }

  /// Cancels every still-pending task in the runtime (the root cancellation
  /// scope): structured shutdown after an external fault, or a watchdog
  /// callback's big red button. Idempotent; safe from any thread.
  void cancel_all(std::exception_ptr cause = {});

  const Config& config() const { return cfg_; }
  core::GateStats gate_stats() const { return gate_.stats(); }
  /// Faults actually injected by the fault plan (all zero when disabled).
  FaultStats fault_stats() const {
    return injector_ != nullptr ? injector_->stats() : FaultStats{};
  }
  /// The join watchdog, or nullptr when not enabled.
  const JoinWatchdog* watchdog() const { return watchdog_.get(); }
  /// The async-mode recovery supervisor, or nullptr unless
  /// Config::policy == PolicyChoice::Async.
  const RecoverySupervisor* recovery() const { return recovery_.get(); }
  /// The resource governor, or nullptr unless Config::governor.enabled.
  ResourceGovernor* governor() { return governor_.get(); }
  const ResourceGovernor* governor() const { return governor_.get(); }
  /// The per-tenant admission controller, or nullptr unless
  /// Config::governor.tenants is non-empty. Enforced inline (independent of
  /// governor.enabled) — see runtime/admission.hpp.
  AdmissionController* admission() { return admission_.get(); }
  const AdmissionController* admission() const { return admission_.get(); }
  /// The policy currently ruling joins: equals config().policy until the
  /// governor downgrades the ladder, then the active (lower) level.
  core::PolicyChoice active_policy() const { return gate_.active_kind(); }
  /// The flight recorder, or nullptr when Config::obs.enabled is false.
  obs::FlightRecorder* recorder() const { return recorder_.get(); }
  /// The gate itself (diagnostics/tests: e.g. polling graph().is_waiting()).
  const core::JoinGate& gate() const { return gate_; }
  core::Verifier* verifier() { return verifier_.get(); }
  Scheduler& scheduler() { return sched_; }
  const Scheduler& scheduler() const { return sched_; }

  /// Exact live/peak bytes of verifier state (0 when no policy is active).
  std::size_t policy_bytes() const {
    return verifier_ ? verifier_->bytes_in_use() : 0;
  }
  std::size_t policy_peak_bytes() const {
    return verifier_ ? verifier_->peak_bytes() : 0;
  }

  /// Exact live/peak bytes of ownership-policy state (0 when unverified).
  std::size_t owp_bytes() const { return owp_ ? owp_->bytes_in_use() : 0; }
  std::size_t owp_peak_bytes() const {
    return owp_ ? owp_->peak_bytes() : 0;
  }

  /// Number of tasks created (root included) — the trace's |A|.
  std::uint64_t tasks_created() const {
    return next_uid_.load(std::memory_order_relaxed);
  }

  /// Number of promises made — the trace's |P|.
  std::uint64_t promises_made() const {
    return next_promise_uid_.load(std::memory_order_relaxed);
  }

  /// The recorded execution trace (Def. 3.1): init/fork actions at task
  /// creation, join actions at join completion. Empty unless
  /// Config::record_trace; meaningful once the runtime is quiescent.
  trace::Trace recorded_trace() const;

 private:
  friend class TaskBase;
  friend void detail::join_current_on(TaskBase&);
  friend bool detail::join_current_on_for(TaskBase&, std::chrono::nanoseconds);
  friend class detail::PromiseStateBase;
  friend void detail::await_promise_state(detail::PromiseStateBase&);
  friend void detail::fulfill_check(detail::PromiseStateBase&);
  friend void detail::fulfill_record(detail::PromiseStateBase&);
  friend void detail::fulfill_committed(detail::PromiseStateBase&);
  friend void detail::transfer_promise_state(detail::PromiseStateBase&,
                                             const TaskBase&);

  void claim_root();
  void register_task(TaskBase& t, const TaskBase* parent);
  void release_node(core::PolicyNode* node);
  void record(const trace::Action& a);
  /// Length of the recorded trace right now — stamped into a rejection
  /// witness as Witness::trace_pos so the offline validator evaluates
  /// prefix-sensitive judgments at the rejection-time prefix.
  std::uint64_t trace_position() const;

  // Spawn backpressure (admission control): past the live-task watermark,
  // async() runs the child inline in the caller instead of submitting it.
  bool spawn_backpressure() const {
    const std::size_t wm = cfg_.governor.spawn_inline_watermark;
    return wm != 0 && sched_.live_tasks() >= wm;
  }
  void run_inline(TaskBase& t);  // pre: claimed + tracked; in runtime.cpp

  // Cancellation plumbing (implementations in runtime.cpp).
  void throw_if_cancelled(const TaskBase& t);
  void track_in_scope(const std::shared_ptr<TaskBase>& t);
  void task_cancelled_done();  // live-task accounting for force-completes

  // Promise plumbing (implementations in runtime.cpp).
  void init_promise_state(detail::PromiseStateBase& s);
  void await_promise(detail::PromiseStateBase& s);
  void transfer_promise(detail::PromiseStateBase& s, const TaskBase& to);
  void promise_state_released(detail::PromiseStateBase& s);
  /// Task-exit hook, called by TaskBase::run() *before* Done is published:
  /// a transfer that commits after this ran observes the task in the OWP's
  /// dead set; one that committed before is swept here. Either way no
  /// promise is stranded on a terminated owner.
  void task_exiting(TaskBase& t);
  /// Orphans each listed promise; when `cause` is non-null (the owner died
  /// of a fault / was cancelled) the promise is poisoned first so awaiters
  /// observe CancelledError-with-cause rather than a bare orphan deadlock.
  void orphan_states(const std::vector<std::uint64_t>& promise_uids,
                     const std::exception_ptr& cause);

  Config cfg_;
  // Retains process-wide lock/worker profiling while this runtime lives
  // (iff obs is on). Declared right after cfg_ (it reads the normalized
  // flag) and before every lock-owning member, so profiling is already
  // enabled when their first acquisitions happen and stays enabled until
  // after they are destroyed.
  obs::ContentionEnableGuard contention_guard_{cfg_.obs.enabled};
  std::unique_ptr<core::Verifier> verifier_;
  std::unique_ptr<core::OwpVerifier> owp_;
  // Declared before gate_/sched_/watchdog_ (they hold non-owning pointers to
  // it) and destroyed after them; nullptr unless cfg_.obs.enabled.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  // Declared before gate_/sched_ (they hold non-owning pointers to it) and
  // destroyed after them, so pending dropped-wakeup redeliveries outlive
  // every consumer.
  std::unique_ptr<FaultInjector> injector_;
  core::JoinGate gate_;
  Scheduler sched_;
  std::shared_ptr<detail::CancelState> root_scope_;
  // After root_scope_, before watchdog_: the watchdog holds a non-owning
  // pointer to the governor (stall reports name the active level), so the
  // governor must outlive it; the governor's poll thread reads the ladder
  // verifier and the gate's WFG, so it is destroyed before them.
  std::unique_ptr<ResourceGovernor> governor_;
  // Async (optimistic) mode only: owns the background detector and breaks
  // victims' waits. After governor_ (failover steps the same ladder the
  // governor owns transitions for) and before watchdog_ (stall reports read
  // detector status, so the watchdog must die first); destroyed before
  // gate_/recorder_/sched_, which its detector thread reads until stopped.
  std::unique_ptr<RecoverySupervisor> recovery_;
  std::unique_ptr<JoinWatchdog> watchdog_;
  // Declared last: references gate_/sched_/verifier_ via callbacks but runs
  // no background thread — calls happen only on request threads, which are
  // quiescent before ~Runtime begins.
  std::unique_ptr<AdmissionController> admission_;
  std::atomic<std::uint64_t> next_uid_{0};
  std::atomic<std::uint64_t> next_promise_uid_{0};
  std::atomic<bool> root_claimed_{false};
  mutable std::mutex trace_mu_;
  std::vector<trace::Action> recorded_;  // guarded by trace_mu_
  mutable std::mutex promises_mu_;
  // Live promise states by uid (for the orphan sweep).  guarded by promises_mu_
  std::unordered_map<std::uint64_t, detail::PromiseStateBase*> promises_;
};

}  // namespace tj::runtime
