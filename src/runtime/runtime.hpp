#pragma once
// Runtime: owns the verifier, the join gate (policy + cycle-detection
// fallback) and the scheduler; implements the instrumented Fork and Join of
// Algorithm 1. One root task per Runtime (the trace's init action); every
// other task is created by async() from within a task context.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>

#include "core/guarded.hpp"
#include "trace/trace.hpp"
#include "core/verifier.hpp"
#include "runtime/config.hpp"
#include "runtime/errors.hpp"
#include "runtime/future.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

class Runtime {
 public:
  explicit Runtime(Config cfg = {});
  ~Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Executes `f` as the root task on the calling thread (the init action),
  /// returns its result after every spawned task has terminated. A Runtime
  /// hosts exactly one root; create a fresh Runtime per program run.
  template <typename F>
  auto root(F&& f) {
    using T = std::invoke_result_t<std::decay_t<F>>;
    claim_root();
    auto task = std::make_shared<detail::TaskImpl<T, std::decay_t<F>>>(
        std::forward<F>(f));
    register_task(*task, nullptr);  // the init action
    task->try_claim();
    {
      detail::CurrentTaskGuard guard(task.get());
      task->run();
    }
    sched_.quiesce();
    task->rethrow_if_error();
    if constexpr (!std::is_void_v<T>) {
      return task->result();
    }
  }

  /// Forks a task executing `fn` as a child of the current task
  /// (Algorithm 1 Fork). Used through the free function async().
  template <typename F>
  auto spawn(F&& fn) {
    using T = std::invoke_result_t<std::decay_t<F>>;
    TaskBase& parent = current_task();
    if (parent.runtime() != this) {
      throw UsageError("spawn: current task belongs to another runtime");
    }
    auto task = std::make_shared<detail::TaskImpl<T, std::decay_t<F>>>(
        std::forward<F>(fn));
    register_task(*task, &parent);
    std::shared_ptr<Task<T>> handle = task;
    sched_.submit(std::move(task));
    return Future<T>(std::move(handle));
  }

  /// Instrumented join of the current task on `target` (Algorithm 1 Join):
  /// policy check, fault or wait, then completion bookkeeping.
  void join(TaskBase& target);

  const Config& config() const { return cfg_; }
  core::GateStats gate_stats() const { return gate_.stats(); }
  core::Verifier* verifier() { return verifier_.get(); }
  Scheduler& scheduler() { return sched_; }

  /// Exact live/peak bytes of verifier state (0 when no policy is active).
  std::size_t policy_bytes() const {
    return verifier_ ? verifier_->bytes_in_use() : 0;
  }
  std::size_t policy_peak_bytes() const {
    return verifier_ ? verifier_->peak_bytes() : 0;
  }

  /// Number of tasks created (root included) — the trace's |A|.
  std::uint64_t tasks_created() const {
    return next_uid_.load(std::memory_order_relaxed);
  }

  /// The recorded execution trace (Def. 3.1): init/fork actions at task
  /// creation, join actions at join completion. Empty unless
  /// Config::record_trace; meaningful once the runtime is quiescent.
  trace::Trace recorded_trace() const;

 private:
  friend class TaskBase;
  friend void detail::join_current_on(TaskBase&);

  void claim_root();
  void register_task(TaskBase& t, const TaskBase* parent);
  void release_node(core::PolicyNode* node);
  void record(const trace::Action& a);

  Config cfg_;
  std::unique_ptr<core::Verifier> verifier_;
  core::JoinGate gate_;
  Scheduler sched_;
  std::atomic<std::uint64_t> next_uid_{0};
  std::atomic<bool> root_claimed_{false};
  mutable std::mutex trace_mu_;
  std::vector<trace::Action> recorded_;  // guarded by trace_mu_
};

}  // namespace tj::runtime
