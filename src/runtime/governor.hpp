#pragma once
// ResourceGovernor: the runtime's overload-response loop. A background
// sampler (same shape as the join watchdog) polls the footprint of the
// verification machinery — live verifier state bytes/nodes, waits-for-graph
// size, live tasks, and the rolling p99 policy-check latency from the obs
// metrics registry — against the budgets in GovernorConfig. When a budget
// stays tripped for `trip_polls` consecutive samples (hysteresis: transient
// spikes do not flap the policy), the governor responds in escalating order:
//
//   1. If the active ladder level is KJ-VC and its epoch GC is not yet on,
//      enable it and give the compactor a full trip window to relieve the
//      pressure before anything else (Table 1's KJ-VC space blow-up often
//      only needs dead components reclaimed, not a policy change).
//   2. Otherwise step the degradation ladder down one level
//      (LadderVerifier::downgrade) — e.g. TJ-GT → TJ-SP → WFG-only — and
//      enter a cooldown of `cooldown_polls` samples so successive levels get
//      a chance to absorb the load before the next step.
//
// Every response is recorded in the transition history (surfaced in watchdog
// StallReports), mirrored as an obs event (PolicyDowngrade / KjGcEnabled)
// and a metrics counter. Downgrades are monotone: the ladder never climbs
// back up (see core/ladder.hpp for why this is the sound direction);
// "recovery" means pressure subsides and the governor simply stops stepping.
//
// Admission control (the spawn-inline watermark) and deadline joins are
// enforced inline by the runtime — the governor's poll loop is not on any
// hot path, and a join's only governance cost is the one relaxed load the
// ladder's kind()/permits_join routing already pays.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/ladder.hpp"
#include "obs/recorder.hpp"
#include "runtime/admission.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::runtime {

/// Governance knobs (embedded in runtime::Config). A budget of 0 means
/// "unlimited" — with all budgets 0 the poll loop only snapshots.
struct GovernorConfig {
  bool enabled = false;
  std::uint32_t poll_ms = 5;  ///< sampling cadence

  // Budgets; 0 = unlimited.
  std::size_t max_verifier_bytes = 0;  ///< policy state footprint (bytes)
  std::size_t max_verifier_nodes = 0;  ///< live policy nodes
  std::size_t max_wfg_edges = 0;       ///< registered wait edges
  std::uint64_t max_policy_check_p99_ns = 0;  ///< needs obs enabled to feed it

  // Hysteresis.
  std::uint32_t trip_polls = 3;      ///< consecutive over-budget samples to act
  std::uint32_t cooldown_polls = 8;  ///< quiet samples after acting

  /// Spawn backpressure: past this many live tasks, async() runs the child
  /// inline in the caller instead of growing the queue/pool. 0 = off.
  ///
  /// Contract: this watermark is enforced by the runtime at EVERY spawn
  /// whenever it is non-zero — independently of `enabled`, which gates only
  /// the background poll loop (downgrades / GC / snapshots). It is rung 2
  /// of the service's admission ladder (docs/robustness.md): per-tenant
  /// shedding at the front door, then spawn backpressure, then policy
  /// downgrade. Regression-tested by
  /// test_admission.GovernorOffBackpressureStillEnforced.
  std::size_t spawn_inline_watermark = 0;

  /// Per-tenant admission budgets. Non-empty ⇒ the runtime constructs an
  /// AdmissionController (Runtime::admission()) that sheds requests at the
  /// front door before any task is spawned. Like spawn_inline_watermark,
  /// this is inline machinery enforced regardless of `enabled`.
  std::vector<TenantBudget> tenants;
};

class ResourceGovernor {
 public:
  /// One sampled footprint reading.
  struct Snapshot {
    std::size_t verifier_bytes = 0;
    std::size_t verifier_nodes = 0;
    std::size_t wfg_edges = 0;
    std::size_t live_tasks = 0;
    std::uint64_t policy_check_p99_ns = 0;
  };

  /// One governance action (downgrade or GC enablement), timestamped with
  /// steady-clock ns since governor construction.
  struct Transition {
    std::uint64_t t_ns = 0;
    std::size_t from_level = 0;
    std::size_t to_level = 0;
    core::PolicyChoice from = core::PolicyChoice::None;
    core::PolicyChoice to = core::PolicyChoice::None;
    std::string reason;  ///< which budget tripped / "kj-gc"

    std::string to_string() const;
  };

  /// `ladder` may be nullptr (policy None/CycleOnly: nothing to degrade —
  /// the governor still samples, for the snapshot/diagnostics surface).
  /// `live_tasks` supplies the scheduler's live-task count; `rec` (nullable)
  /// feeds the p99 budget and receives events/counters.
  ResourceGovernor(GovernorConfig cfg, core::LadderVerifier* ladder,
                   const wfg::WaitsForGraph* wfg,
                   std::function<std::size_t()> live_tasks,
                   obs::FlightRecorder* rec = nullptr);
  ~ResourceGovernor();
  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// Samples and evaluates once, synchronously — the poll thread calls this
  /// every poll_ms; tests call it directly for determinism (pair with a
  /// large poll_ms to keep the background thread out of the way).
  void poll_now();

  Snapshot snapshot() const;

  /// Budget trip state of the most recent poll.
  bool under_pressure() const {
    return pressure_.load(std::memory_order_relaxed);
  }
  std::uint64_t polls() const { return polls_.load(std::memory_order_relaxed); }

  /// The ladder's current level / active policy (configured policy when no
  /// ladder exists).
  std::size_t level() const {
    return ladder_ != nullptr ? ladder_->level() : 0;
  }
  core::PolicyChoice active_policy() const;

  std::vector<Transition> transitions() const;
  /// "tj-gt->tj-sp@12ms(bytes); ..." — compact history for stall reports.
  std::string history_string() const;

  const GovernorConfig& config() const { return cfg_; }

 private:
  void poll_loop();
  void act(const std::string& reason);
  void record_transition(Transition t, obs::EventKind kind);

  const GovernorConfig cfg_;
  core::LadderVerifier* const ladder_;   // not owned; may be nullptr
  const wfg::WaitsForGraph* const wfg_;  // not owned
  const std::function<std::size_t()> live_tasks_;
  obs::FlightRecorder* const rec_;  // not owned; nullptr ⇒ recording off
  const std::chrono::steady_clock::time_point epoch_;

  std::atomic<bool> pressure_{false};
  std::atomic<std::uint64_t> polls_{0};
  std::uint32_t consecutive_ = 0;      // poll-thread only (or under poll calls)
  std::uint32_t cooldown_left_ = 0;    // poll-thread only
  std::uint64_t kj_compactions_seen_ = 0;  // poll-thread only

  mutable std::mutex mu_;
  std::vector<Transition> transitions_;  // guarded by mu_
  std::condition_variable cv_;
  bool stop_ = false;  // guarded by mu_
  std::thread thread_;
};

}  // namespace tj::runtime
