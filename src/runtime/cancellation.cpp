#include "runtime/cancellation.hpp"

#include <utility>

#include "runtime/barrier.hpp"
#include "runtime/errors.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/task.hpp"

namespace tj::runtime {

namespace detail {

CancelState::CancelState(bool cancel_on_fault,
                         std::shared_ptr<CancelState> parent,
                         const TaskBase* owner)
    : cancel_on_fault_(cancel_on_fault),
      parent_(std::move(parent)),
      owner_(owner) {}

std::exception_ptr CancelState::cause() const {
  for (const CancelState* s = this; s != nullptr; s = s->parent_.get()) {
    if (s->cancelled_.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(s->mu_);
      if (s->cause_) return s->cause_;
    }
  }
  return nullptr;
}

void CancelState::cancel(std::exception_ptr cause) {
  bool expected = false;
  if (!cancelled_.compare_exchange_strong(expected, true,
                                          std::memory_order_acq_rel)) {
    return;  // idempotent: first canceller wins
  }
  std::vector<std::weak_ptr<TaskBase>> tasks;
  std::vector<std::weak_ptr<CancelState>> children;
  std::vector<std::weak_ptr<CheckedBarrier>> barriers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cause_ = cause;
    tasks.swap(tasks_);
    children.swap(children_);
    barriers.swap(barriers_);
  }
  for (const auto& wt : tasks) {
    if (auto t = wt.lock()) {
      if (t->deliver_cancel(cause)) {
        tasks_cancelled_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  const auto poison = std::make_exception_ptr(
      CancelledError("barrier poisoned: its cancellation scope cancelled",
                     cause));
  for (const auto& wb : barriers) {
    if (auto b = wb.lock()) b->poison(poison);
  }
  for (const auto& wc : children) {
    if (auto c = wc.lock()) c->cancel(cause);
  }
}

void CancelState::on_task_fault(const std::exception_ptr& error) {
  if (cancel_on_fault_) cancel(error);
}

void CancelState::track_task(const std::shared_ptr<TaskBase>& t) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (tasks_.size() == tasks_.capacity()) {
      // Amortized prune so a long-lived scope does not accumulate tombstones.
      std::erase_if(tasks_,
                    [](const std::weak_ptr<TaskBase>& w) { return w.expired(); });
    }
    tasks_.push_back(t);
  }
  // Post-check closes the race with a concurrent cancel(): if the insert
  // missed the canceller's snapshot, the flag is already visible here and we
  // deliver ourselves (deliver_cancel's claim CAS makes doubles harmless).
  if (cancelled()) {
    if (t->deliver_cancel(cause())) {
      tasks_cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

void CancelState::track_child(const std::shared_ptr<CancelState>& child) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    children_.push_back(child);
  }
  if (cancelled()) child->cancel(cause());
}

void CancelState::track_barrier(const std::weak_ptr<CheckedBarrier>& b) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    barriers_.push_back(b);
  }
  if (cancelled()) {
    if (auto barrier = b.lock()) {
      barrier->poison(std::make_exception_ptr(CancelledError(
          "barrier poisoned: its cancellation scope cancelled", cause())));
    }
  }
}

}  // namespace detail

CancellationScope::CancellationScope(OnFault mode)
    : task_(&current_task()),
      state_(std::make_shared<detail::CancelState>(mode == OnFault::Cancel,
                                                   task_->scope_, task_)),
      prev_(task_->scope_) {
  task_->scope_ = state_;
  if (prev_ != nullptr) prev_->track_child(state_);
}

CancellationScope::~CancellationScope() { task_->scope_ = prev_; }

bool cancel_requested() {
  const TaskBase* t = current_task_or_null();
  return t != nullptr && t->cancel_requested();
}

void check_cancelled() {
  const TaskBase* t = current_task_or_null();
  if (t != nullptr && t->cancel_requested()) {
    throw CancelledError("task cancelled: its cancellation scope cancelled",
                         t->cancel_scope() ? t->cancel_scope()->cause()
                                           : nullptr);
  }
}

}  // namespace tj::runtime
