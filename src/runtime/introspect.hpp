#pragma once
// Live runtime introspection: an on-demand snapshot of the deadlock-
// avoidance machinery mid-run — what the WFG currently believes, which
// ladder level is ruling, what the governor last measured, every counter,
// the recent rejection witnesses, and each currently-blocked wait with its
// last recorded events. Capturing a snapshot never stops the world: every
// source is either atomic or guarded by its own short-lived lock, so the
// result is a moment-in-time cut (fields may be skewed by in-flight
// operations), which is exactly what a stuck-process diagnosis needs.
//
// Two triggers are provided on top of the direct snapshot() call: an
// IntrospectionHook polling thread whose request() is safe from any
// context, and a SIGUSR-style process signal routed to the most recently
// armed hook (`kill -USR1 <pid>` dumps the snapshot to stderr).

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/guarded.hpp"
#include "core/policy_ids.hpp"
#include "core/witness.hpp"
#include "obs/contention.hpp"
#include "runtime/governor.hpp"
#include "runtime/recovery.hpp"
#include "wfg/waits_for_graph.hpp"

namespace tj::runtime {

class Runtime;

struct RuntimeSnapshot {
  // --- policy / degradation ladder ---
  core::PolicyChoice configured = core::PolicyChoice::None;
  core::PolicyChoice active = core::PolicyChoice::None;
  bool ladder_attached = false;
  std::size_t ladder_level = 0;   ///< 0 = configured policy
  std::size_t ladder_levels = 1;  ///< total rungs (1 when no ladder)
  std::string degradation_history;  ///< governor transitions, "" when none

  // --- counters ---
  std::uint64_t tasks_created = 0;
  std::uint64_t promises_made = 0;
  std::size_t live_tasks = 0;
  core::GateStats gate;
  std::size_t verifier_bytes = 0;
  std::size_t owp_bytes = 0;

  // --- waits-for graph ---
  std::vector<wfg::WaitsForGraph::EdgeView> wfg_edges;

  // --- resource governor ---
  bool governor_attached = false;
  bool governor_pressure = false;
  ResourceGovernor::Snapshot governor;

  // --- per-tenant admission control (service mode) ---
  bool admission_attached = false;
  std::vector<AdmissionController::TenantSnapshot> tenants;
  std::uint64_t requests_shed_total = 0;

  // --- rejection provenance ---
  std::vector<core::Witness> witnesses;  ///< gate's recent ring, oldest first
  std::uint64_t witnesses_dropped = 0;

  // --- blocked waits (needs the watchdog; its bookkeeping is the only
  // runtime-wide registry of who is blocked on what right now) ---
  bool watchdog_attached = false;
  std::uint64_t watchdog_stalls = 0;  ///< stall batches reported so far
  std::uint64_t watchdog_cycles = 0;  ///< cycles found by on-demand scans
  struct BlockedWait {
    std::uint64_t waiter = 0;
    std::uint64_t target = 0;
    bool on_promise = false;
    std::string verdict;
    std::uint64_t blocked_ms = 0;
    /// Last flight-recorder events naming the waiter (formatted, oldest
    /// first); empty when the recorder is off.
    std::vector<std::string> recent_events;
  };
  std::vector<BlockedWait> blocked;

  // --- flight recorder ---
  bool recorder_attached = false;
  std::uint64_t obs_events = 0;
  std::uint64_t obs_dropped = 0;

  // --- contention observatory ---
  /// True while lock/worker profiling was enabled at capture time. The
  /// registry is process-global and cumulative; when profiling never ran
  /// it is empty (registry-inert contract).
  bool contention_enabled = false;
  std::vector<obs::SiteSnapshot> lock_sites;
  /// Worker-state census + cumulative timelines from this runtime's
  /// scheduler (zeros when profiling never ran).
  obs::WorkerStateBoard::Totals workers;

  // --- async detection / recovery (PolicyChoice::Async only) ---
  bool recovery_attached = false;
  RecoveryStatus recovery;

  /// Multi-line human-readable dump (the hooks' default sink).
  std::string to_string() const;
};

/// Captures a snapshot of `rt`. Safe to call mid-run from any thread,
/// including concurrently with joins, downgrades, and faults.
RuntimeSnapshot snapshot(const Runtime& rt);

/// A polling trigger: request() (async-signal-safe after construction: one
/// relaxed atomic store) makes the poll thread capture a snapshot and hand
/// it to the sink — stderr text when no sink is given. The most recently
/// constructed hook is also the process-wide signal target.
class IntrospectionHook {
 public:
  using Sink = std::function<void(const RuntimeSnapshot&)>;

  explicit IntrospectionHook(const Runtime& rt, std::uint32_t poll_ms = 50,
                             Sink sink = {});
  ~IntrospectionHook();
  IntrospectionHook(const IntrospectionHook&) = delete;
  IntrospectionHook& operator=(const IntrospectionHook&) = delete;

  /// Arms the next poll to dump. Async-signal-safe.
  void request() { want_.store(true, std::memory_order_relaxed); }

  /// Snapshots dumped so far.
  std::uint64_t dumps() const { return dumps_.load(std::memory_order_relaxed); }

  /// Flags the most recently constructed live hook (async-signal-safe).
  /// False when no hook is armed.
  static bool request_current();

  /// Installs a SIGUSR1 handler (where the platform has one) that routes to
  /// request_current(). Returns false when the platform lacks SIGUSR1.
  static bool install_signal_handler();

 private:
  void poll_loop();

  const Runtime& rt_;
  const std::uint32_t poll_ms_;
  Sink sink_;
  std::atomic<bool> want_{false};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> dumps_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace tj::runtime
