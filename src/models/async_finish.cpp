#include "models/async_finish.hpp"

namespace tj::models::detail {

runtime::FinishScope*& current_finish() {
  thread_local runtime::FinishScope* scope = nullptr;
  return scope;
}

}  // namespace tj::models::detail
