#pragma once
// Cilk-style spawn/sync on top of the futures runtime (Sec. 1: "Cilk's model
// is more limited than Futures in general because a Cilk function is
// compelled to join with all the tasks it has spawned"). A SpawnScope owns
// the Futures of the tasks the *current* task spawned; sync() joins exactly
// those. Programs written against this interface produce fully strict
// computation graphs (Blumofe & Leiserson): every join edge goes from a task
// to its own child — trivially valid under KJ and TJ (rule I).

#include <utility>
#include <vector>

#include "runtime/api.hpp"

namespace tj::models {

/// One Cilk "function frame": spawn children, then sync with all of them.
/// Destruction without sync() is allowed only after sync() has run or when
/// nothing was spawned (enforced: the destructor syncs defensively so no
/// child outlives its frame, preserving full strictness).
class SpawnScope {
 public:
  SpawnScope() = default;
  SpawnScope(const SpawnScope&) = delete;
  SpawnScope& operator=(const SpawnScope&) = delete;

  ~SpawnScope() {
    // A Cilk function cannot return before its children: implicit sync.
    for (const auto& f : children_) {
      if (f.valid() && !f.ready()) f.join();
    }
  }

  /// cilk_spawn: fork a child of the current task.
  template <typename F>
  void spawn(F&& fn) {
    children_.push_back(runtime::async(
        [fn = std::forward<F>(fn)]() mutable { fn(); }));
  }

  /// cilk_sync: join every child spawned so far, in spawn order.
  void sync() {
    for (const auto& f : children_) f.join();
    children_.clear();
  }

  std::size_t spawned() const { return children_.size(); }

 private:
  std::vector<runtime::Future<void>> children_;
};

/// Value-returning flavour: spawn yields a handle usable ONLY by this frame.
template <typename T>
class SpawnGroup {
 public:
  SpawnGroup() = default;
  SpawnGroup(const SpawnGroup&) = delete;
  SpawnGroup& operator=(const SpawnGroup&) = delete;

  template <typename F>
  std::size_t spawn(F&& fn) {
    children_.push_back(runtime::async(std::forward<F>(fn)));
    return children_.size() - 1;
  }

  /// Joins all children and returns their results in spawn order.
  std::vector<T> sync() {
    std::vector<T> out;
    out.reserve(children_.size());
    for (const auto& f : children_) out.push_back(f.get());
    children_.clear();
    return out;
  }

 private:
  std::vector<runtime::Future<T>> children_;
};

}  // namespace tj::models
