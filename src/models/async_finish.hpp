#pragma once
// The async-finish model of X10/Habanero (Sec. 1: "rather than join with
// arbitrary tasks, a task can join all at once with the collection of tasks
// it created (transitively) within a given computation"). finish { ... }
// waits for every async spawned inside the dynamic extent of the block,
// across nesting. Programs in this model produce terminally strict
// computation graphs (Guo et al.) — a strict superset of Cilk's fully
// strict graphs and a strict subset of what Futures allow.
//
// Implementation: a finish block carries a FinishScope; `fa.async(fn)`
// registers the task with the *innermost enclosing* finish of the calling
// task, which is threaded through a thread-local stack (mirroring HJ's
// dynamic scoping of finish).

#include <functional>
#include <utility>

#include "runtime/finish.hpp"

namespace tj::models {

namespace detail {
runtime::FinishScope*& current_finish();
}  // namespace detail

/// Runs `body` as a finish block: returns only after every task spawned via
/// af_async() within the block's dynamic extent (on any task) terminated.
template <typename F>
void finish(F&& body) {
  runtime::FinishScope scope;
  runtime::FinishScope* const prev = detail::current_finish();
  detail::current_finish() = &scope;
  try {
    body();
  } catch (...) {
    detail::current_finish() = prev;
    scope.await();  // even on exceptions, a finish joins its asyncs
    throw;
  }
  detail::current_finish() = prev;
  scope.await();
}

/// Spawns `fn` registered with the innermost enclosing finish block of this
/// task. Throws UsageError when no finish block is active.
template <typename F>
void af_async(F&& fn) {
  runtime::FinishScope* scope = detail::current_finish();
  if (scope == nullptr) {
    throw runtime::UsageError("af_async: no enclosing finish block");
  }
  // The child may itself call af_async: it must see the same innermost
  // finish. Thread-locals don't flow to the child task, so re-establish the
  // scope inside the child body.
  scope->spawn([scope, fn = std::forward<F>(fn)]() mutable {
    runtime::FinishScope* const prev = detail::current_finish();
    detail::current_finish() = scope;
    try {
      fn();
    } catch (...) {
      detail::current_finish() = prev;
      throw;
    }
    detail::current_finish() = prev;
  });
}

}  // namespace tj::models
