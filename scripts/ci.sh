#!/usr/bin/env bash
# CI entry point: build + full test suite for each configured preset.
# Defaults to the release build and a ThreadSanitizer build — the latter is
# what shakes out races in the runtime's concurrent machinery (scheduler,
# join gate, promise fulfil/orphan paths), which plain ctest cannot see.
#
# Usage: scripts/ci.sh                 # release + tsan
#        PRESETS="release" scripts/ci.sh   # subset
set -euo pipefail

cd "$(dirname "$0")/.."
PRESETS="${PRESETS:-release tsan}"

for p in $PRESETS; do
  echo "== [$p] configure"
  cmake --preset "$p"
  echo "== [$p] build"
  cmake --build --preset "$p" -j"$(nproc)"
  echo "== [$p] test"
  ctest --preset "$p" --output-on-failure -j"$(nproc)"
done

echo "ci: all presets green ($PRESETS)"
