#!/usr/bin/env bash
# CI entry point: build + full test suite for each configured preset.
# Defaults to the release build and a ThreadSanitizer build — the latter is
# what shakes out races in the runtime's concurrent machinery (scheduler,
# join gate, promise fulfil/orphan paths), which plain ctest cannot see.
#
# Usage: scripts/ci.sh                 # release + tsan
#        PRESETS="release" scripts/ci.sh   # subset
#        CHAOS=0 scripts/ci.sh         # skip the chaos stage
#        ASAN=0 scripts/ci.sh          # skip the asan stage
#        SOAK=0 scripts/ci.sh          # skip the long-lived soak stage
#        LOADGEN=0 scripts/ci.sh       # skip the service-mode loadgen stage
#        BENCH=0 scripts/ci.sh         # skip the benchmark-artifact stage
set -euo pipefail

cd "$(dirname "$0")/.."
PRESETS="${PRESETS:-release tsan}"
CHAOS="${CHAOS:-1}"
ASAN="${ASAN:-1}"
SOAK="${SOAK:-1}"
LOADGEN="${LOADGEN:-1}"
BENCH="${BENCH:-1}"

# Temp files shared across stages; one trap cleans them all up.
tmpfiles=()
cleanup() { rm -f "${tmpfiles[@]:-}"; }
trap cleanup EXIT

for p in $PRESETS; do
  echo "== [$p] configure"
  cmake --preset "$p"
  echo "== [$p] build"
  cmake --build --preset "$p" -j"$(nproc)"
  echo "== [$p] test"
  ctest --preset "$p" --output-on-failure -j"$(nproc)"
done

# Observability stage: record a live benchmark run with the flight recorder,
# bridge it to the offline notation, and replay it through the offline
# checker. trace_dump exits nonzero on dropped events or a failed app
# self-check; trace_check exits nonzero if the offline judgments disagree
# with the verdicts the gate issued live (a live-admitted join that is not
# TJ-valid offline, or a recorded deadlock cycle).
if [[ " $PRESETS " == *" release "* ]]; then
  echo "== [obs] record live run and replay through the offline checker"
  obs_trace="$(mktemp /tmp/tj-obs-XXXXXX.trace)"
  tmpfiles+=("$obs_trace")
  for app in series nqueens; do
    for sched in cooperative blocking; do
      ./build/tools/trace_dump --app="$app" --size=tiny \
          --scheduler="$sched" --trace="$obs_trace"
      ./build/examples/trace_check "$obs_trace"
    done
  done

  # Critical-path attribution must reconcile: per overhead category, the
  # on-path + off-path split computed from the event stream has to equal the
  # metrics histograms' totals (exactly, when no events were dropped).
  # --check makes any mismatch (or a failed app self-check) a nonzero exit.
  echo "== [obs] critical-path attribution reconciles with the histograms"
  for app in series nqueens; do
    for sched in cooperative blocking; do
      ./build/tools/critical_path --app="$app" --size=tiny \
          --scheduler="$sched" --check
    done
  done
fi

# Chaos stage: re-run the randomized stress suites and the fault-plan seed
# sweep under ThreadSanitizer. The plans inject policy rejections, perturbed
# wakeups, fulfill failures and worker deaths; TSan watches the recovery
# paths those faults drive (cancellation, poisoning, compensation spawning),
# which a single green run of the functional suite does not stress.
# Telemetry race stage: the TelemetrySink samples a live runtime from its
# own thread while workers mutate every counter it reads, and RequestScope
# stamps cross threads at spawn time — exactly the shapes TSan exists for.
if [[ " $PRESETS " == *" tsan "* ]]; then
  echo "== [telemetry] sink + request-span tests under tsan"
  ctest --preset tsan -R 'Telemetry' --output-on-failure -j"$(nproc)"

  # Contention-observatory race stage: the profiled lock wrappers and the
  # worker-state board are always-on concurrency primitives (every runtime
  # lock acquisition crosses them), and their snapshot path reads counters
  # other threads are mutating — the exact shape TSan exists for.
  echo "== [contention] profiled locks + worker-state board under tsan"
  ctest --preset tsan -R 'Contention' --output-on-failure -j"$(nproc)"

  # Async-detector race stage: the optimistic gate approves joins with zero
  # policy work while a background detector replays the event stream into a
  # shadow graph and the recovery supervisor posts wait-breaks into parked
  # waiters — three threads handing exception_ptrs, wake generations and
  # WFG snapshots across each other. This is the subsystem most likely to
  # hide a wakeup race, so it gets its own named TSan pass.
  echo "== [async] optimistic detector + recovery tests under tsan"
  ctest --preset tsan -R 'AsyncDetect|AsyncFailover' \
        --output-on-failure -j"$(nproc)"
fi

if [[ "$CHAOS" == "1" ]] && [[ " $PRESETS " == *" tsan "* ]]; then
  echo "== [chaos] seed sweep under tsan (incl. detector faults)"
  ctest --preset tsan -R 'Chaos|FaultInjection|Cancellation|Watchdog' \
        --output-on-failure -j"$(nproc)"
  echo "== [chaos] fault-plan fuzz"
  ./build-tsan/tools/fuzz_policies --fault-seed=1 --iterations=48
  echo "== [chaos] governor budget-chaos fuzz"
  ./build-tsan/tools/fuzz_policies --fault-seed=1 --budget-chaos --iterations=8
fi

# Soak stage: every app plus the promise-dataflow pattern cycling through ONE
# long-lived runtime under tight governor budgets and an armed chaos plan —
# the graceful-degradation acceptance test (no hangs, no lost results,
# monotone downgrades, reconciled gate stats, bounded RSS). ~25 s wall.
if [[ "$SOAK" == "1" ]] && [[ " $PRESETS " == *" release "* ]]; then
  echo "== [soak] degradation soak, both schedulers, chaos armed"
  ./build/tools/soak --seconds=10 --fault-seed=7
fi

# Service-mode stage: open-loop mixed-tenant traffic against one long-lived
# runtime per scheduler, with chaos armed and hostile (tight) budgets — the
# admission-control acceptance test. The tool itself exits nonzero unless
# every mode conserves requests exactly (submitted == completed + shed +
# timed_out), reconciles the gate's admission stats, and degrades
# monotonically; on top of that the emitted SLO report must parse as JSON.
if [[ "$LOADGEN" == "1" ]] && [[ " $PRESETS " == *" release "* ]]; then
  echo "== [loadgen] open-loop service run, both schedulers, chaos + hostile budgets"
  slo_json="$(mktemp /tmp/tj-slo-XXXXXX.json)"
  tmpfiles+=("$slo_json")
  ./build/tools/loadgen --seconds=6 --rate=120 --deadline-ms=250 \
      --fault-seed=7 --hostile --json="$slo_json"
  python3 -m json.tool "$slo_json" >/dev/null
  echo "== [loadgen] SLO report is valid JSON"

  # Telemetry smoke: the same service run with the continuous exporter and
  # the declarative SLO gate armed. loadgen itself exits nonzero unless the
  # final telemetry sample reconciles exactly with its end-of-run stats and
  # every SLO rule holds (generous bounds — this gates wiring, not perf);
  # afterwards the JSONL stream is schema-validated line by line and the
  # dashboard must render it.
  echo "== [telemetry] continuous export + SLO gate + dashboard render"
  tel_jsonl="$(mktemp /tmp/tj-telemetry-XXXXXX.jsonl)"
  tel_prom="$(mktemp /tmp/tj-telemetry-XXXXXX.prom)"
  tmpfiles+=("$tel_jsonl" "$tel_prom")
  ./build/tools/loadgen --seconds=6 --rate=120 --deadline-ms=250 \
      --fault-seed=7 --hostile \
      --telemetry="$tel_jsonl" --prom="$tel_prom" \
      --slo='p99_ms<60000,shed_rate<=0.95,downgrade_level<=3,watchdog_cycles==0'
  python3 - "$tel_jsonl" <<'EOF'
import json, sys
required = ["t_ms", "seq", "scheduler", "configured_policy", "active_policy",
            "ladder_level", "gate", "counters", "obs", "governor", "tenants",
            "hist", "delta"]
gate_keys = ["joins_checked", "requests_checked", "requests_admitted",
             "requests_shed"]
n = 0
for line in open(sys.argv[1]):
    if not line.strip():
        continue
    s = json.loads(line)
    for k in required:
        assert k in s, f"sample {n}: missing {k}"
    for k in gate_keys:
        assert k in s["gate"], f"sample {n}: missing gate.{k}"
    assert s["gate"]["requests_checked"] == (
        s["gate"]["requests_admitted"] + s["gate"]["requests_shed"]), n
    n += 1
assert n >= 2, "telemetry stream too short"
print(f"telemetry schema OK ({n} samples)")
EOF
  ./build/tools/tj_top --once --no-color "$tel_jsonl" >/dev/null
  grep -q '^tj_joins_checked ' "$tel_prom"
  echo "== [telemetry] JSONL schema, dashboard render, Prometheus dump OK"

  # Async-mode acceptance: the same open-loop service run under optimistic
  # verification. The gate approves joins with zero policy work and the
  # background detector + recovery supervisor break any deadlock that slips
  # through, so the contract shifts from "no deadlock ever blocks" to "every
  # deadlock is broken within a bounded recovery latency" — which is exactly
  # what the SLO gate enforces: recovery p99 under 200 ms and the watchdog
  # (the backstop above the detector) never firing. Chaos stays armed so
  # detector delay/drop/death faults are in play during live traffic.
  echo "== [async] loadgen under optimistic verification + recovery SLO gate"
  async_jsonl="$(mktemp /tmp/tj-async-XXXXXX.jsonl)"
  tmpfiles+=("$async_jsonl")
  ./build/tools/loadgen --seconds=6 --rate=120 --deadline-ms=250 \
      --fault-seed=7 --policy=async \
      --telemetry="$async_jsonl" \
      --slo='recovery_p99_ms<200,p99_ms<60000,watchdog_cycles==0'
  echo "== [async] recovery-latency SLO holds under live traffic"
fi

# Benchmark artifact: the canonical runtime-ops microbenchmark numbers
# (spawn / completed-join / fork-join per policy, plus governor, watchdog
# and recorder-on variants) published as BENCH_runtime_ops.json at the repo
# root — docs/benchmarks.md documents the schema. The recorder-off vs
# recorder-on pair in this file is the observability cost contract's
# regression check.
if [[ "$BENCH" == "1" ]] && [[ " $PRESETS " == *" release "* ]]; then
  echo "== [bench] publish BENCH_runtime_ops.json"
  ./build/bench/bench_runtime_ops --json=BENCH_runtime_ops.json >/dev/null
  python3 - <<'EOF'
import json
d = json.load(open("BENCH_runtime_ops.json"))
names = {b["name"] for b in d["benchmarks"]}
for needle in ["RuntimeOps/Spawn/none/iterations:50000",
               "RuntimeOps/ForkAllJoinAll10k/recorder-on/iterations:3",
               "RuntimeOps/ForkAllJoinAll10k/async/iterations:3"]:
    assert needle in names, f"missing benchmark {needle}"
for b in d["benchmarks"]:
    if "/async" in b["name"]:
        assert b.get("failover", 1) == 0, f"{b['name']}: detector failed over"
print(f"bench artifact OK ({len(names)} benchmarks)")
EOF
fi

# Scaling artifact: ops/sec vs thread count for every policy column, each
# cell annotated with its measured lock-contention share — published as
# BENCH_scaling.json at the repo root (schema "tj-scaling-v1", documented in
# docs/benchmarks.md). BENCH=0 still runs a 2-thread smoke so the pipeline
# (profiling guard, registry diff, poison detection, JSON schema) stays
# gated even when the full sweep is skipped. The validator requires every
# policy x thread cell to be present and unpoisoned.
if [[ " $PRESETS " == *" release "* ]]; then
  if [[ "$BENCH" == "1" ]]; then
    echo "== [scaling] publish BENCH_scaling.json (full sweep)"
    ./build/bench/bench_scaling --ops=1000 --json=BENCH_scaling.json >/dev/null
    scaling_json=BENCH_scaling.json
  else
    echo "== [scaling] 2-thread smoke (BENCH=0: full sweep skipped)"
    scaling_json="$(mktemp /tmp/tj-scaling-XXXXXX.json)"
    tmpfiles+=("$scaling_json")
    ./build/bench/bench_scaling --max-threads=2 --ops=100 \
        --json="$scaling_json" >/dev/null
  fi
  python3 - "$scaling_json" <<'EOF'
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "tj-scaling-v1", d.get("schema")
policies = ["tj-gt", "tj-jp", "tj-sp", "kj-vc", "kj-ss", "owp", "cycle",
            "async"]
assert d["policies"] == policies, d["policies"]
threads = d["threads"]
assert threads, "no thread counts"
cells = {(c["policy"], c["threads"]): c for c in d["cells"]}
for p in policies:
    for t in threads:
        c = cells.get((p, t))
        assert c is not None, f"missing cell {p}/{t}"
        assert not c["poisoned"], f"cell {p}/{t}: {c['poison_reason']}"
        assert c["ops_per_sec"] > 0, f"cell {p}/{t} has no throughput"
        assert c["acquisitions"] >= c["contended"], f"cell {p}/{t} counters"
        for k in ["contended_share", "lock_wait_share", "top_site",
                  "effective_parallelism"]:
            assert k in c, f"cell {p}/{t} missing {k}"
print(f"scaling artifact OK ({len(d['cells'])} cells, threads={threads})")
EOF
fi

# ASan stage: a targeted address/UB-sanitizer pass over the subsystems that
# juggle raw policy-node and promise-state lifetimes under faults and
# degradation (governor/ladder downgrades, KJ-VC epoch GC compaction,
# injected worker death + redelivery, inline-spawn accounting). The tsan
# preset cannot see heap-use-after-free; this stage exists for exactly that.
if [[ "$ASAN" == "1" ]]; then
  echo "== [asan] configure + build"
  cmake --preset asan
  cmake --build --preset asan -j"$(nproc)"
  echo "== [asan] governor + fault-injection + recovery tests"
  ctest --preset asan -R 'Governor|Ladder|DeadlineJoin|Backpressure|WatchdogDegradation|FaultInjection|Recovery' \
        --output-on-failure -j"$(nproc)"
  echo "== [asan] soak smoke"
  ./build-asan/tools/soak --seconds=6 --fault-seed=7
fi

echo "ci: all presets green ($PRESETS)"
