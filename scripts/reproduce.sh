#!/usr/bin/env bash
# Reproduces every artifact: build, full test suite, all benchmark binaries.
# Mirrors the paper's artifact workflow (Appendix A.5): one script runs the
# registered benchmarks, a results file collects the raw data.
#
# Usage: scripts/reproduce.sh [results-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
OUT="${1:-reproduction-results}"
mkdir -p "$OUT"

echo "== configure & build"
cmake -B build -G Ninja
cmake --build build

echo "== test suite"
ctest --test-dir build -j"$(nproc)" 2>&1 | tee "$OUT/ctest.txt" | tail -3

echo "== fuzzing (differential, 10k traces)"
./build/tools/fuzz_policies --iterations=10000 2>/dev/null \
  | tee "$OUT/fuzz.txt"

echo "== Table 1 (complexity)"
./build/bench/bench_table1_complexity 2>/dev/null \
  > "$OUT/table1_complexity.txt"
./build/bench/bench_table1_space > "$OUT/table1_space.txt"

echo "== Table 2 (overheads; this is the headline run)"
./build/bench/table2_overheads --size=small --reps=5 --csv \
  2>"$OUT/table2.log" | tee "$OUT/table2.txt"

echo "== Figure 2 (exec times with CIs)"
./build/bench/fig2_exec_times --size=small --reps=10 \
  2>/dev/null | tee "$OUT/fig2.txt"

echo "== ablations"
./build/bench/ablation_lca_depth 2>/dev/null > "$OUT/ablation_lca.txt"
./build/bench/ablation_scheduler > "$OUT/ablation_scheduler.txt"
./build/bench/ablation_sync_style > "$OUT/ablation_sync_style.txt"
./build/bench/bench_fallback_cost 2>/dev/null > "$OUT/fallback_cost.txt"
./build/bench/bench_runtime_ops 2>/dev/null > "$OUT/runtime_ops.txt"
./build/bench/bench_promise_ops 2>/dev/null > "$OUT/promise_ops.txt"

echo "== examples"
for ex in quickstart unordered_descendants map_reduce deadlock_recovery \
          policy_lab finish_scope promise_dataflow; do
  echo "--- $ex" >> "$OUT/examples.txt"
  ./build/examples/$ex >> "$OUT/examples.txt" 2>&1
done
echo "init(0); fork(0,1); fork(1,2); join(0,2)" \
  | ./build/examples/trace_check - >> "$OUT/examples.txt" || true

echo
echo "All results in $OUT/. Compare $OUT/table2.txt against Table 2 and"
echo "EXPERIMENTS.md; overhead *factors* and orderings are the reproduction"
echo "target, not absolute times."
